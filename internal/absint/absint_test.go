package absint

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/langgen"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/symexec"
)

func analyze(t *testing.T, src string) (*ir.Func, *Result) {
	t.Helper()
	f := ir.MustLowerSource(src).Funcs[0]
	return f, Analyze(f, DefaultConfig())
}

func TestReturnRangeStraightLine(t *testing.T) {
	_, res := analyze(t, "int f(void) { return 41 + 1; }")
	if res.ReturnRange != symexec.Single(42) {
		t.Fatalf("return range = %v", res.ReturnRange)
	}
}

func TestReturnRangeBounded(t *testing.T) {
	// x in [0,255]; returns either x+1 (in [1,256]) or 0.
	_, res := analyze(t, `
int f(int x) {
	if (x > 10) { return x + 1; }
	return 0;
}`)
	rr := res.ReturnRange
	if !rr.Contains(0) || !rr.Contains(256) {
		t.Fatalf("return range %v should cover {0} and [1,256]", rr)
	}
	if rr.Lo < 0 || rr.Hi > 256 {
		t.Fatalf("return range %v too wide", rr)
	}
}

func TestLoopWideningTerminates(t *testing.T) {
	f, res := analyze(t, `
int f(int n) {
	int s = 0;
	int i = 0;
	while (i < n) {
		s = s + i;
		i = i + 1;
	}
	return s;
}`)
	if res.Iterations >= 10000 {
		t.Fatalf("fixpoint hit the safety valve (%d iterations)", res.Iterations)
	}
	if res.Iterations > 10*len(f.Blocks)+50 {
		t.Fatalf("fixpoint too slow: %d iterations for %d blocks", res.Iterations, len(f.Blocks))
	}
	// The accumulator grows without a static bound: after widening its
	// upper end must be the domain bound.
	if res.ReturnRange.Hi != symexec.Bound {
		t.Fatalf("widened return = %v", res.ReturnRange)
	}
	// But it never goes negative: s starts at 0 and only grows by i >= 0...
	// (the base domain loses the i >= 0 relation through the join, so the
	// lower bound may also widen; just require the range to be non-empty).
	if res.ReturnRange.Empty() {
		t.Fatal("empty return range")
	}
}

func TestUnreachableBlockDetected(t *testing.T) {
	f, res := analyze(t, `
int f(void) {
	int debug = 0;
	if (debug) { impossible(); return 1; }
	return 0;
}`)
	if len(res.Unreachable) == 0 {
		t.Fatalf("constant-false branch not proved dead:\n%s", f)
	}
	if res.ReturnRange != symexec.Single(0) {
		t.Fatalf("return range = %v, want {0}", res.ReturnRange)
	}
}

func TestDivByZeroWarning(t *testing.T) {
	_, res := analyze(t, "int f(int x) { return 10 / x; }")
	found := false
	for _, w := range res.Warnings {
		if w.Kind == "possible-div-by-zero" {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %+v", res.Warnings)
	}
	// A constant divisor must stay quiet.
	_, clean := analyze(t, "int f(int x) { return x / 2; }")
	if len(clean.Warnings) != 0 {
		t.Fatalf("clean division warned: %+v", clean.Warnings)
	}
}

func TestNegativeIndexWarning(t *testing.T) {
	_, res := analyze(t, `
int f(int x) {
	int a[4];
	a[x - 300] = 1;
	return a[0];
}`)
	found := false
	for _, w := range res.Warnings {
		if w.Kind == "possible-negative-index" {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %+v", res.Warnings)
	}
}

func TestWarningsDeduplicated(t *testing.T) {
	// The division sits in a loop: the fixpoint revisits it, but the
	// warning must appear once.
	_, res := analyze(t, `
int f(int x, int n) {
	int s = 0;
	while (n > 0) {
		s = s + 10 / x;
		n = n - 1;
	}
	return s;
}`)
	count := 0
	for _, w := range res.Warnings {
		if w.Kind == "possible-div-by-zero" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate warnings: %+v", res.Warnings)
	}
}

// Soundness (differential property): for generated programs and sampled
// inputs, every concrete return value lies inside the abstract ReturnRange.
func TestSoundAgainstInterpreter(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		spec := langgen.DefaultSpec()
		spec.Seed = seed
		spec.Files = 1
		spec.VulnDensity = 0
		tree := langgen.Generate(spec)
		ast, err := minic.Parse(tree.Files[0].Content)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Lower(ast)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(seed * 31)
		for _, fn := range prog.Funcs {
			res := Analyze(fn, DefaultConfig())
			for trial := 0; trial < 4; trial++ {
				cfg := interp.DefaultConfig()
				inputs := make([]int64, len(fn.Params)+6)
				for i := range inputs {
					inputs[i] = int64(rng.Intn(256)) // match InputRange
				}
				cfg.Inputs = inputs
				cfg.MaxSteps = 20000
				// External call results must also respect the abstraction:
				// the analysis maps unknown externals to Top, so any value
				// is fine, but source functions assume [0,255].
				cfg.ExternalValue = func(name string, callIndex int) int64 {
					return int64(callIndex % 256)
				}
				tr, err := interp.Run(prog, fn.Name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !tr.Returned {
					continue
				}
				if !res.ReturnRange.Contains(tr.ReturnValue) {
					t.Fatalf("seed %d %s: concrete return %d outside abstract %v",
						seed, fn.Name, tr.ReturnValue, res.ReturnRange)
				}
			}
		}
	}
}

func TestStateJoinSemantics(t *testing.T) {
	a := State{"x": symexec.Interval{Lo: 0, Hi: 5}, "y": symexec.Single(1)}
	b := State{"x": symexec.Interval{Lo: 3, Hi: 9}}
	j := join(a, b)
	if j["x"] != (symexec.Interval{Lo: 0, Hi: 9}) {
		t.Fatalf("join x = %v", j["x"])
	}
	if _, ok := j["y"]; ok {
		t.Fatal("one-sided variable survived the join")
	}
	if j.get("y") != symexec.Top() {
		t.Fatal("missing variable should read as Top")
	}
}

func TestWidenDirections(t *testing.T) {
	prev := State{"x": symexec.Interval{Lo: 0, Hi: 10}}
	next := State{"x": symexec.Interval{Lo: -1, Hi: 12}}
	w := widen(prev, next)
	if w["x"].Lo != -symexec.Bound || w["x"].Hi != symexec.Bound {
		t.Fatalf("widen = %v", w["x"])
	}
	stable := State{"x": symexec.Interval{Lo: 0, Hi: 10}}
	if got := widen(prev, stable); got["x"] != prev["x"] {
		t.Fatalf("stable widen = %v", got["x"])
	}
}
