// Package absint implements abstract interpretation over the IR with the
// interval domain — the second §4.1 technique the paper names alongside
// symbolic execution ("using symbolic execution or abstract interpretation,
// we can calculate the number of different execution paths in a program").
// Where the symbolic executor enumerates paths under a budget, the abstract
// interpreter computes a sound fixpoint over ALL paths: per-block variable
// ranges, reachability, and whole-program warnings (possible division by
// zero, possible negative array index) with widening to guarantee
// termination on loops.
package absint

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/symexec"
)

// Config controls the analysis.
type Config struct {
	// InputRange is assumed for parameters and source-function results.
	InputRange symexec.Interval
	// Sources are functions whose results are fresh inputs.
	Sources map[string]bool
	// WidenAfter is the number of joins at a block before widening kicks in.
	WidenAfter int
}

// DefaultConfig matches the symbolic executor's conventions.
func DefaultConfig() Config {
	return Config{
		InputRange: symexec.Interval{Lo: 0, Hi: 255},
		Sources: map[string]bool{
			"read_input": true, "recv": true, "read": true, "getenv": true,
			"fgets": true, "scanf": true,
		},
		WidenAfter: 3,
	}
}

// Warning is a possible runtime fault the abstract semantics cannot rule
// out.
type Warning struct {
	Kind string // "possible-div-by-zero", "possible-negative-index"
	Line int
}

// Result is the analysis outcome for one function.
type Result struct {
	// In maps each block to the variable ranges on entry (nil for
	// unreachable blocks).
	In map[*ir.Block]State
	// ReturnRange over-approximates every return value (empty when the
	// function cannot return a value).
	ReturnRange symexec.Interval
	// Unreachable lists blocks the analysis proves dead.
	Unreachable []*ir.Block
	Warnings    []Warning
	// Iterations is the number of fixpoint passes taken.
	Iterations int
}

// State maps variable names to intervals. Missing names are unconstrained.
type State map[string]symexec.Interval

func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// get returns the interval of name, defaulting to Top.
func (s State) get(name string) symexec.Interval {
	if iv, ok := s[name]; ok {
		return iv
	}
	return symexec.Top()
}

// join computes the pointwise convex hull; names absent on either side go
// to Top (absent means unconstrained, not bottom, since every tracked name
// has been assigned on that path).
func join(a, b State) State {
	out := State{}
	for k, av := range a {
		if bv, ok := b[k]; ok {
			out[k] = av.Join(bv)
		}
		// Present only in a: unconstrained on the other path -> drop to Top
		// by omission.
	}
	return out
}

// widen applies interval widening: bounds that grew since prev jump to the
// domain limits so loops converge.
func widen(prev, next State) State {
	out := State{}
	for k, nv := range next {
		pv, ok := prev[k]
		if !ok {
			out[k] = nv
			continue
		}
		w := nv
		if nv.Lo < pv.Lo {
			w.Lo = -symexec.Bound
		}
		if nv.Hi > pv.Hi {
			w.Hi = symexec.Bound
		}
		out[k] = w
	}
	return out
}

func statesEqual(a, b State) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

// Analyze runs the fixpoint over one function.
func Analyze(f *ir.Func, cfg Config) *Result {
	if cfg.WidenAfter == 0 {
		cfg.WidenAfter = 3
	}
	res := &Result{
		In:          map[*ir.Block]State{},
		ReturnRange: symexec.Interval{Lo: 1, Hi: 0},
	}
	entry := State{}
	for _, p := range f.Params {
		entry[p] = cfg.InputRange
	}
	res.In[f.Entry()] = entry

	joinCount := map[*ir.Block]int{}
	warned := map[Warning]bool{}

	// Worklist fixpoint in block order for determinism.
	inWork := map[*ir.Block]bool{f.Entry(): true}
	for {
		var blk *ir.Block
		for _, b := range f.Blocks { // deterministic pick: lowest ID first
			if inWork[b] {
				blk = b
				break
			}
		}
		if blk == nil {
			break
		}
		inWork[blk] = false
		res.Iterations++
		if res.Iterations > 10000 {
			break // safety valve; widening should converge long before this
		}
		st := res.In[blk].clone()
		// Transfer the block (warnings only recorded once per site).
		for _, in := range blk.Instrs {
			step(in, st, cfg, func(w Warning) {
				if !warned[w] {
					warned[w] = true
					res.Warnings = append(res.Warnings, w)
				}
			})
		}
		// Propagate through the terminator.
		push := func(succ *ir.Block, out State) {
			cur, seen := res.In[succ]
			if !seen {
				res.In[succ] = out
				inWork[succ] = true
				return
			}
			merged := join(cur, out)
			joinCount[succ]++
			if joinCount[succ] > cfg.WidenAfter {
				merged = widen(cur, merged)
			}
			if !statesEqual(cur, merged) {
				res.In[succ] = merged
				inWork[succ] = true
			}
		}
		switch term := blk.Term.(type) {
		case *ir.Jump:
			push(term.Target, st)
		case *ir.Branch:
			cond := evalValue(term.Cond, st)
			switch symexec.TruthOf(cond) {
			case symexec.AlwaysTrue:
				push(term.True, st)
			case symexec.AlwaysFalse:
				push(term.False, st)
			default:
				// No per-branch refinement in the base domain: both arms get
				// the joined state (sound; symexec supplies the refinement
				// precision when needed).
				push(term.True, st.clone())
				push(term.False, st)
			}
		case *ir.Ret:
			if term.Value != nil {
				res.ReturnRange = res.ReturnRange.Join(evalValue(term.Value, st))
			}
		}
	}

	for _, b := range f.Blocks {
		if _, ok := res.In[b]; !ok {
			res.Unreachable = append(res.Unreachable, b)
		}
	}
	sort.Slice(res.Warnings, func(i, j int) bool {
		if res.Warnings[i].Line != res.Warnings[j].Line {
			return res.Warnings[i].Line < res.Warnings[j].Line
		}
		return res.Warnings[i].Kind < res.Warnings[j].Kind
	})
	return res
}

// step transfers one instruction over the state.
func step(in ir.Instr, st State, cfg Config, warn func(Warning)) {
	switch x := in.(type) {
	case *ir.Assign:
		st[x.Dst.String()] = evalValue(x.Src, st)
	case *ir.BinOp:
		l, r := evalValue(x.L, st), evalValue(x.R, st)
		var out symexec.Interval
		switch x.Op {
		case "+":
			out = l.Add(r)
		case "-":
			out = l.Sub(r)
		case "*":
			out = l.Mul(r)
		case "/":
			if r.Contains(0) {
				warn(Warning{Kind: "possible-div-by-zero", Line: x.Line})
			}
			out = l.Div(r)
		case "%":
			if r.Contains(0) {
				warn(Warning{Kind: "possible-mod-by-zero", Line: x.Line})
			}
			out = l.Mod(r)
		case "<", "<=", ">", ">=", "==", "!=":
			out = symexec.Compare(x.Op, l, r)
		case "&&", "||":
			out = symexec.Interval{Lo: 0, Hi: 1}
		default:
			out = symexec.Top()
		}
		st[x.Dst.String()] = out
	case *ir.UnOp:
		v := evalValue(x.X, st)
		switch x.Op {
		case "-":
			st[x.Dst.String()] = v.Neg()
		case "!":
			switch symexec.TruthOf(v) {
			case symexec.AlwaysTrue:
				st[x.Dst.String()] = symexec.Single(0)
			case symexec.AlwaysFalse:
				st[x.Dst.String()] = symexec.Single(1)
			default:
				st[x.Dst.String()] = symexec.Interval{Lo: 0, Hi: 1}
			}
		default:
			st[x.Dst.String()] = symexec.Top()
		}
	case *ir.Call:
		if x.Dst != nil {
			if cfg.Sources[x.Name] {
				st[x.Dst.String()] = cfg.InputRange
			} else {
				st[x.Dst.String()] = symexec.Top()
			}
		}
	case *ir.ArrayLoad:
		idx := evalValue(x.Index, st)
		if idx.Lo < 0 {
			warn(Warning{Kind: "possible-negative-index", Line: x.Line})
		}
		st[x.Dst.String()] = symexec.Top()
	case *ir.ArrayStore:
		idx := evalValue(x.Index, st)
		if idx.Lo < 0 {
			warn(Warning{Kind: "possible-negative-index", Line: x.Line})
		}
	}
}

func evalValue(v ir.Value, st State) symexec.Interval {
	switch x := v.(type) {
	case ir.Const:
		return symexec.Single(x.V)
	case ir.Var:
		return st.get(x.Name)
	case ir.Temp:
		return st.get(x.String())
	}
	return symexec.Top()
}
