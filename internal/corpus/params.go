// Package corpus generates the synthetic CVE corpus standing in for the
// paper's 164-application, 5,975-vulnerability CVE-database snapshot
// (April 2017). The generative model is calibrated so the published
// statistics emerge by construction:
//
//   - 164 applications: 126 primarily C, 20 C++, 6 Python, 12 Java (§3.1);
//   - every application has a >= 5-year CVE history (§5.1);
//   - total vulnerabilities = 5,975 exactly (§5.1);
//   - the Figure 2 log-log regression of vulnerability count on kLoC has
//     slope 0.39, intercept 0.17 and R² = 24.66% before integer rounding
//     (rounding perturbs the measured fit by well under 1%);
//   - Figure 3's cyclomatic-complexity correlation is equally weak.
//
// A latent per-application "code quality" variable is the residual of the
// Figure 2 regression; the non-size code properties (unsafe-API density,
// attack surface, tainted sinks, lint warnings) are generated to co-vary
// with that latent variable. This encodes the paper's central hypothesis —
// that multiple weak code-property signals jointly predict vulnerability
// incidence better than size alone — as a property of the synthetic world,
// which the training pipeline (Figure 4) must then *recover*.
package corpus

import (
	"repro/internal/lang"
)

// Params configures corpus generation.
type Params struct {
	Seed uint64
	// LangMix gives the number of applications per primary language.
	LangMix map[lang.Language]int
	// TargetTotalCVEs is the exact corpus-wide vulnerability count.
	TargetTotalCVEs int
	// Slope, Intercept, R2 are the Figure 2 regression targets in
	// log10(#vuln)-on-log10(kLoC) space.
	Slope, Intercept, R2 float64
	// LogKLoCMax bounds application size: log10(kLoC) is drawn from
	// [0, LogKLoCMax] (kLoC from 1 to 10^LogKLoCMax).
	LogKLoCMax float64
	// StartYear..EndYear is the CVE publication window.
	StartYear, EndYear int
}

// DefaultParams returns the paper-calibrated parameters.
func DefaultParams() Params {
	return Params{
		Seed: 20170408, // "collected as of April 2017"
		LangMix: map[lang.Language]int{
			lang.C:      126,
			lang.CPP:    20,
			lang.Python: 6,
			lang.Java:   12,
		},
		TargetTotalCVEs: 5975,
		Slope:           0.39,
		Intercept:       0.17,
		R2:              0.2466,
		LogKLoCMax:      4, // up to 10,000 kLoC, Figure 2's axis
		StartYear:       2002,
		EndYear:         2017,
	}
}

// NumApps returns the total application count in the mix.
func (p Params) NumApps() int {
	n := 0
	for _, c := range p.LangMix {
		n += c
	}
	return n
}
