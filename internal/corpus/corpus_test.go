package corpus

import (
	"math"
	"testing"
	"time"

	"repro/internal/cvedb"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stats"
)

var cached *Corpus

func defaultCorpus(t *testing.T) *Corpus {
	t.Helper()
	if cached != nil {
		return cached
	}
	c, err := Generate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cached = c
	return c
}

func TestCorpusSizeAndMix(t *testing.T) {
	c := defaultCorpus(t)
	if len(c.Apps) != 164 {
		t.Fatalf("apps = %d, want 164", len(c.Apps))
	}
	counts := c.LanguageCounts()
	want := map[lang.Language]int{lang.C: 126, lang.CPP: 20, lang.Python: 6, lang.Java: 12}
	for l, n := range want {
		if counts[l] != n {
			t.Errorf("%v apps = %d, want %d", l, counts[l], n)
		}
	}
}

func TestCorpusTotalCVEsExact(t *testing.T) {
	c := defaultCorpus(t)
	if got := c.TotalCVEs(); got != 5975 {
		t.Fatalf("total CVEs = %d, want 5975", got)
	}
	if got := c.DB.NumRecords(); got != 5975 {
		t.Fatalf("db records = %d, want 5975", got)
	}
}

func TestCorpusFiveYearHistories(t *testing.T) {
	c := defaultCorpus(t)
	asOf := time.Date(c.Params.EndYear, 4, 30, 0, 0, 0, 0, time.UTC)
	sel := c.DB.SelectEstablished(cvedb.FiveYears, asOf)
	if len(sel) != 164 {
		t.Fatalf("established apps = %d, want all 164", len(sel))
	}
	// Multi-record apps additionally have a >= 5-year first-to-last span.
	for _, a := range c.Apps {
		if a.VulnCount >= 2 {
			if span := c.DB.HistorySpan(a.App.Name); span < cvedb.FiveYears {
				t.Fatalf("%s span = %v", a.App.Name, span)
			}
		}
	}
}

func TestCorpusFigure2Regression(t *testing.T) {
	c := defaultCorpus(t)
	kloc, vulns := c.LoCVulnSeries()
	fit := stats.FitLinear(stats.Log10(kloc), stats.Log10(vulns))
	// Integer rounding perturbs the calibrated fit slightly.
	if math.Abs(fit.Slope-0.39) > 0.03 {
		t.Errorf("slope = %v, want ~0.39", fit.Slope)
	}
	if math.Abs(fit.Intercept-0.17) > 0.08 {
		t.Errorf("intercept = %v, want ~0.17", fit.Intercept)
	}
	if math.Abs(fit.R2-0.2466) > 0.04 {
		t.Errorf("R2 = %v, want ~0.2466", fit.R2)
	}
}

func TestCorpusFigure3WeakerOrSimilar(t *testing.T) {
	c := defaultCorpus(t)
	kloc, vulns := c.LoCVulnSeries()
	cyclo, _ := c.CyclomaticVulnSeries()
	locFit := stats.FitLinear(stats.Log10(kloc), stats.Log10(vulns))
	cycloFit := stats.FitLinear(stats.Log10(cyclo), stats.Log10(vulns))
	// Cyclomatic complexity adds noise on top of size, so its R² must stay
	// in the same weak band (within a small margin of the LoC fit).
	if cycloFit.R2 > locFit.R2+0.05 {
		t.Errorf("cyclomatic R2 %v unexpectedly above LoC R2 %v", cycloFit.R2, locFit.R2)
	}
	if cycloFit.R2 < 0.05 {
		t.Errorf("cyclomatic R2 %v lost all correlation", cycloFit.R2)
	}
}

func TestCorpusKLoCRange(t *testing.T) {
	c := defaultCorpus(t)
	for _, a := range c.Apps {
		if a.App.KLoC < 1 || a.App.KLoC > 10000 {
			t.Fatalf("%s kloc = %v out of [1, 10000]", a.App.Name, a.App.KLoC)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := Generate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Apps {
		if a.Apps[i].App != b.Apps[i].App || a.Apps[i].VulnCount != b.Apps[i].VulnCount {
			t.Fatalf("app %d differs between runs", i)
		}
		for _, k := range []string{"kloc", "unsafe_calls", "rasq"} {
			if a.Apps[i].Features[k] != b.Apps[i].Features[k] {
				t.Fatalf("app %d feature %s differs", i, k)
			}
		}
	}
}

func TestCorpusManagedLanguagesNoMemoryCWEs(t *testing.T) {
	c := defaultCorpus(t)
	for _, a := range c.Apps {
		if !a.App.Language.Managed() {
			continue
		}
		for _, r := range c.DB.Records(a.App.Name) {
			switch r.CWE {
			case 121, 122, 120, 125, 787, 416, 415, 119, 134, 401:
				t.Fatalf("%s (%v) has managed-safe CWE-%d", a.App.Name, a.App.Language, r.CWE)
			}
		}
	}
}

func TestCorpusScoresValid(t *testing.T) {
	c := defaultCorpus(t)
	for _, a := range c.Apps[:20] {
		for _, r := range c.DB.Records(a.App.Name) {
			if r.Score < 0 || r.Score > 10 {
				t.Fatalf("score %v out of range", r.Score)
			}
			if r.V3 == "" {
				t.Fatalf("record %s missing v3 vector", r.ID)
			}
			if r.Published.Year() < 2016 && r.V2 == "" {
				t.Fatalf("old record %s missing v2 vector", r.ID)
			}
		}
	}
}

func TestCorpusQualityDrivesHygiene(t *testing.T) {
	// Apps with higher latent quality residual must show higher unsafe-call
	// density on average — the correlation the model is meant to recover.
	c := defaultCorpus(t)
	var qs, density []float64
	for _, a := range c.Apps {
		if a.App.Language.Managed() {
			continue
		}
		qs = append(qs, a.Quality)
		density = append(density, a.Features["unsafe_calls"]/(a.App.KLoC+1))
	}
	if r := stats.Pearson(qs, density); r < 0.3 {
		t.Fatalf("quality/unsafe-density correlation = %v, want > 0.3", r)
	}
}

func TestCorpusHypothesisLabelsPopulated(t *testing.T) {
	c := defaultCorpus(t)
	var highSev, netVec, stack int
	for _, a := range c.Apps {
		highSev += a.HighSeverity
		netVec += a.NetworkVector
		stack += a.StackOverflow
	}
	if highSev == 0 || netVec == 0 || stack == 0 {
		t.Fatalf("labels empty: high=%d net=%d stack=%d", highSev, netVec, stack)
	}
	// Sanity: high severity is a minority but not negligible.
	frac := float64(highSev) / 5975
	if frac < 0.05 || frac > 0.8 {
		t.Fatalf("high-severity fraction = %v", frac)
	}
}

func TestCorpusEmitsExactlyFeatureNames(t *testing.T) {
	// The generative model and the real extractor must agree on the feature
	// schema: every app's vector has exactly the canonical names, no more,
	// no fewer — otherwise trained models silently ignore real measurements.
	c := defaultCorpus(t)
	want := map[string]bool{}
	for _, n := range metrics.FeatureNames {
		want[n] = true
	}
	for i, a := range c.Apps {
		if len(a.Features) != len(metrics.FeatureNames) {
			t.Fatalf("app %d emits %d features, want %d", i, len(a.Features), len(metrics.FeatureNames))
		}
		for k := range a.Features {
			if !want[k] {
				t.Fatalf("app %d emits unknown feature %q", i, k)
			}
		}
	}
	// The interprocedural/CWE features must carry signal somewhere in the
	// corpus (all-zero columns would be dead weight for the classifiers),
	// and the memory-unsafety ones must vanish on managed languages.
	moved := map[string]bool{}
	for _, a := range c.Apps {
		for _, n := range []string{
			metrics.FeatInterTaintedSinks, metrics.FeatTaintDepthMax,
			metrics.FeatCWE121Findings, metrics.FeatCWE134Findings,
			metrics.FeatCWE78Findings,
		} {
			if a.Features[n] > 0 {
				moved[n] = true
			}
		}
		if a.App.Language.Managed() {
			if a.Features[metrics.FeatCWE121Findings] != 0 || a.Features[metrics.FeatCWE134Findings] != 0 {
				t.Fatalf("%s (%v) has memory-unsafety findings", a.App.Name, a.App.Language)
			}
		}
	}
	if len(moved) != 5 {
		t.Fatalf("dead feature columns: only %v carry signal", moved)
	}
}

func TestCorpusFeatureMatrixShape(t *testing.T) {
	c := defaultCorpus(t)
	X, names := c.FeatureMatrix()
	if len(X) != 164 {
		t.Fatalf("rows = %d", len(X))
	}
	if len(names) != len(X[0]) {
		t.Fatalf("names %d != cols %d", len(names), len(X[0]))
	}
}

func TestGenerateRejectsTinyMix(t *testing.T) {
	p := DefaultParams()
	p.LangMix = map[lang.Language]int{lang.C: 1}
	if _, err := Generate(p); err == nil {
		t.Fatal("tiny corpus accepted")
	}
}

func TestCorpusRecordCountsConsistent(t *testing.T) {
	c := defaultCorpus(t)
	for _, a := range c.Apps {
		if a.VulnCount < 1 {
			t.Fatalf("%s has %d records, want >= 1", a.App.Name, a.VulnCount)
		}
		if len(c.DB.Records(a.App.Name)) != a.VulnCount {
			t.Fatalf("%s record count mismatch", a.App.Name)
		}
	}
}
