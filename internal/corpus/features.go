package corpus

import (
	"math"

	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// genFeatures synthesizes an application's code-property vector. Sizes
// drive the volume-like properties; the latent Quality residual drives the
// hygiene-like properties (unsafe-API density, lint warnings, tainted
// sinks, smells), which is what lets a multi-feature model outperform
// LoC alone — the paper's thesis, encoded in the generative model.
func genFeatures(a *AppProfile, rng *stats.RNG) metrics.FeatureVector {
	fv := metrics.FeatureVector{}
	for _, n := range metrics.FeatureNames {
		fv[n] = 0
	}
	kloc := a.App.KLoC
	loc := kloc * 1000
	q := a.Quality // roughly N(0, ~0.8)

	noise := func(sigma float64) float64 { return rng.LogNormal(0, sigma) }

	fv[metrics.FeatKLoC] = kloc
	fv[metrics.FeatFiles] = math.Max(1, math.Round(loc/400*noise(0.3)))
	if !a.App.Language.Managed() {
		fv[metrics.FeatLanguageUnsafe] = 1
	}
	functions := math.Max(1, math.Round(loc/35*noise(0.25)))
	fv[metrics.FeatFunctions] = functions
	fv[metrics.FeatAvgFunctionLen] = loc / functions * 4.5
	fv[metrics.FeatMaxFunctionLen] = fv[metrics.FeatAvgFunctionLen] * (4 + 8*rng.Float64())
	fv[metrics.FeatCyclomaticTotal] = a.App.Cyclomatic
	fv[metrics.FeatCyclomaticAvg] = a.App.Cyclomatic / functions
	fv[metrics.FeatCyclomaticMax] = fv[metrics.FeatCyclomaticAvg] * (5 + 15*rng.Float64())
	fv[metrics.FeatHalsteadVolume] = loc * 28 * noise(0.2)
	fv[metrics.FeatHalsteadEffort] = fv[metrics.FeatHalsteadVolume] * 60 * noise(0.3)
	fv[metrics.FeatHalsteadBugs] = fv[metrics.FeatHalsteadVolume] / 3000

	// Hygiene-like properties: density scales with exp(quality).
	hygiene := math.Exp(0.9 * q) // >1 for sloppy code, <1 for careful code
	fv[metrics.FeatCommentRatio] = clamp01(0.22 / math.Sqrt(hygiene) * noise(0.2))
	fv[metrics.FeatLongFunctions] = math.Round(functions * 0.03 * hygiene * noise(0.4))
	fv[metrics.FeatDeeplyNested] = math.Round(functions * 0.02 * hygiene * noise(0.4))
	fv[metrics.FeatManyParams] = math.Round(functions * 0.015 * noise(0.4))
	fv[metrics.FeatGodFiles] = math.Round(fv[metrics.FeatFiles] * 0.02 * hygiene * noise(0.5))
	fv[metrics.FeatMagicNumbers] = math.Round(loc * 0.02 * hygiene * noise(0.3))
	fv[metrics.FeatTodoDensity] = 2 * hygiene * noise(0.5)
	fv[metrics.FeatDupLines] = math.Round(loc * 0.01 * hygiene * noise(0.6))

	// Attack surface: partly architectural (random), partly hygiene-driven.
	netDensity := 0.3 * rng.LogNormal(0, 1.0) // calls per kLoC; varies by app type
	fv[metrics.FeatNetworkCalls] = math.Round(kloc * netDensity)
	fv[metrics.FeatFileInputs] = math.Round(kloc * 0.8 * noise(0.5))
	fv[metrics.FeatEnvInputs] = math.Round(kloc * 0.2 * noise(0.5))
	fv[metrics.FeatProcessSpawns] = math.Round(kloc * 0.1 * noise(0.7))
	fv[metrics.FeatPrivilegeOps] = math.Round(kloc * 0.05 * noise(0.8))
	unsafeRate := 0.0
	if !a.App.Language.Managed() {
		unsafeRate = 0.6 * hygiene * noise(0.3)
	}
	fv[metrics.FeatUnsafeCalls] = math.Round(kloc * unsafeRate)
	fv[metrics.FeatFormatCalls] = math.Round(kloc * 1.5 * noise(0.4))
	fv[metrics.FeatEntryPoints] = math.Max(1, math.Round(5+kloc*0.02*noise(0.5)))
	fv[metrics.FeatRASQ] = fv[metrics.FeatNetworkCalls]*1.0 +
		fv[metrics.FeatFileInputs]*0.6 + fv[metrics.FeatEnvInputs]*0.4 +
		fv[metrics.FeatProcessSpawns]*0.8 + fv[metrics.FeatPrivilegeOps]*0.7 +
		fv[metrics.FeatUnsafeCalls]*0.9 + fv[metrics.FeatFormatCalls]*0.5 +
		fv[metrics.FeatEntryPoints]*0.3

	// History features (Shin et al.): churn and team size scale with the
	// codebase; heavy churn co-varies with vulnerability proneness.
	fv[metrics.FeatChurn] = math.Round(loc * 0.15 * math.Exp(0.5*q) * noise(0.4))
	fv[metrics.FeatDevelopers] = math.Max(1, math.Round(math.Sqrt(kloc)*noise(0.5)))
	fv[metrics.FeatAgeYears] = 5 + 10*rng.Float64()

	// Deep-analysis features: tainted sinks track unsafe-call hygiene;
	// path counts track control-flow volume.
	fv[metrics.FeatTaintedSinks] = math.Round((fv[metrics.FeatUnsafeCalls]*0.15 +
		fv[metrics.FeatNetworkCalls]*0.05) * math.Exp(0.6*q) * noise(0.3))
	fv[metrics.FeatFeasiblePaths] = math.Log10(1+a.App.Cyclomatic) * noise(0.1)
	fv[metrics.FeatLintWarnings] = math.Round(loc * 0.015 * hygiene * noise(0.3))
	fv[metrics.FeatAttackDepth] = math.Max(1, math.Round(4-1.2*q+rng.Normal(0, 0.8)))

	// Call-graph shape: fan-out grows with program size; depth grows
	// logarithmically (empirical regularity in layered systems).
	fv[metrics.FeatCallFanOut] = math.Max(1, math.Round(2+2*math.Log10(1+kloc)*noise(0.4)))
	fv[metrics.FeatCallDepth] = math.Max(1, math.Round(2+2*math.Log10(1+kloc)*noise(0.3)))
	// Dynamic traces: sloppier code tests worse — lower sampled branch
	// coverage; path diversity tracks control-flow volume. The base rate is
	// calibrated to what interp.ProfileFunc measures on byte-sampled runs.
	fv[metrics.FeatDynBranchCov] = clamp01(0.45 / math.Sqrt(hygiene) * noise(0.15))
	fv[metrics.FeatDynUniquePaths] = math.Log10(1+a.App.Cyclomatic*0.05) * noise(0.15)

	// Interprocedural taint and CWE-mapped findings, mirroring what the
	// findings engine measures: cross-function flows add to (and therefore
	// exceed) the intraprocedural sink count; chain length is bounded by
	// call-graph depth; per-weakness evidence tracks the API family it is
	// derived from, scaled by the same quality residual. Memory-unsafe
	// weaknesses (CWE-121/134) vanish on managed languages.
	fv[metrics.FeatInterTaintedSinks] = math.Round((fv[metrics.FeatTaintedSinks]*1.3 +
		fv[metrics.FeatNetworkCalls]*0.02) * noise(0.25))
	if fv[metrics.FeatInterTaintedSinks] > 0 {
		fv[metrics.FeatTaintDepthMax] = math.Max(1,
			math.Round(fv[metrics.FeatCallDepth]*(0.4+0.4*rng.Float64())))
	}
	if !a.App.Language.Managed() {
		fv[metrics.FeatCWE121Findings] = math.Round(fv[metrics.FeatUnsafeCalls] * 0.12 *
			math.Exp(0.5*q) * noise(0.3))
		fv[metrics.FeatCWE134Findings] = math.Round(fv[metrics.FeatFormatCalls] * 0.04 *
			hygiene * noise(0.4))
	}
	fv[metrics.FeatCWE78Findings] = math.Round(fv[metrics.FeatProcessSpawns] * 0.25 *
		math.Exp(0.6*q) * noise(0.4))

	return fv
}

// Dataset assembles the corpus into an ml.Dataset-ready matrix: one row per
// application in canonical feature order, plus the per-app label columns
// callers derive targets from.
func (c *Corpus) FeatureMatrix() ([][]float64, []string) {
	X := make([][]float64, len(c.Apps))
	for i, a := range c.Apps {
		X[i] = a.Features.Slice()
	}
	return X, append([]string(nil), metrics.FeatureNames...)
}

// LanguageCounts returns the per-language application counts (Figure 2's
// legend data).
func (c *Corpus) LanguageCounts() map[lang.Language]int {
	out := map[lang.Language]int{}
	for _, a := range c.Apps {
		out[a.App.Language]++
	}
	return out
}

// TotalCVEs returns the corpus-wide record count.
func (c *Corpus) TotalCVEs() int {
	t := 0
	for _, a := range c.Apps {
		t += a.VulnCount
	}
	return t
}

// LoCVulnSeries returns (kLoC, #vulns) pairs — Figure 2's scatter.
func (c *Corpus) LoCVulnSeries() (kloc, vulns []float64) {
	for _, a := range c.Apps {
		kloc = append(kloc, a.App.KLoC)
		vulns = append(vulns, float64(a.VulnCount))
	}
	return kloc, vulns
}

// CyclomaticVulnSeries returns (cyclomatic, #vulns) pairs — Figure 3's
// scatter.
func (c *Corpus) CyclomaticVulnSeries() (cyclo, vulns []float64) {
	for _, a := range c.Apps {
		cyclo = append(cyclo, a.App.Cyclomatic)
		vulns = append(vulns, float64(a.VulnCount))
	}
	return cyclo, vulns
}
