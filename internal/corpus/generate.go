package corpus

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cvedb"
	"repro/internal/cvss"
	"repro/internal/cwe"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// AppProfile is one generated application with its ground truth.
type AppProfile struct {
	App cvedb.App
	// Quality is the latent code-quality residual (higher = more
	// vulnerability-prone than size alone predicts).
	Quality float64
	// Features is the application's code-property vector, generated to
	// co-vary with size and Quality.
	Features metrics.FeatureVector
	// VulnCount is the number of CVE records.
	VulnCount int
	// Ground-truth hypothesis labels, derived from the records.
	HighSeverity  int
	NetworkVector int
	StackOverflow int
}

// Corpus is the generated dataset.
type Corpus struct {
	Params Params
	DB     *cvedb.DB
	Apps   []AppProfile
}

// Generate builds the corpus. The same Params produce identical output.
func Generate(p Params) (*Corpus, error) {
	if p.NumApps() < 3 {
		return nil, fmt.Errorf("corpus: need at least 3 apps, got %d", p.NumApps())
	}
	rng := stats.NewRNG(p.Seed)
	n := p.NumApps()

	// --- Sizes: stratified log10(kLoC) over [0, LogKLoCMax], skewed toward
	// smaller applications by a power transform whose exponent is tuned so
	// the final rounded counts hit TargetTotalCVEs.
	quantiles := make([]float64, n)
	for i := range quantiles {
		quantiles[i] = (float64(i) + 0.5) / float64(n)
	}
	rng.Shuffle(n, func(i, j int) { quantiles[i], quantiles[j] = quantiles[j], quantiles[i] })

	// Raw residuals: sampled once, then affinely adjusted for the exact fit.
	rawRes := make([]float64, n)
	for i := range rawRes {
		rawRes[i] = rng.Normal(0, 1)
	}

	// build generates the log-log scatter for inner parameters (a, b,
	// resScale). Sizes come from a symmetric stratified family over
	// [0, LogKLoCMax]: x = L/2 + (L/2)·sign(t)·|t|^kappa with t uniform on
	// (-1, 1). kappa = 1 is log-uniform; larger kappa concentrates sizes
	// toward the middle while keeping the full span (most real applications
	// are mid-sized with a few giants, which is also what makes the total
	// CVE count land where the paper reports it). Residuals are centered
	// and orthogonalized against size so the *pre-rounding* fit is exactly
	// (a, b) with residual standard deviation resScale.
	build := func(kappa, a, b, resScale float64) (xs, ys, res []float64) {
		xs = make([]float64, n)
		half := p.LogKLoCMax / 2
		for i, q := range quantiles {
			t := 2*q - 1
			mag := math.Pow(math.Abs(t), kappa)
			if t < 0 {
				mag = -mag
			}
			xs[i] = half + half*mag
		}
		res = append([]float64(nil), rawRes...)
		mx := stats.Mean(xs)
		mr := stats.Mean(res)
		var sxx, sxr float64
		for i := range xs {
			res[i] -= mr
			sxx += (xs[i] - mx) * (xs[i] - mx)
			sxr += (xs[i] - mx) * res[i]
		}
		if sxx > 0 {
			beta := sxr / sxx
			for i := range res {
				res[i] -= beta * (xs[i] - mx)
			}
		}
		cur := stats.StdDev(res)
		if cur > 0 {
			for i := range res {
				res[i] *= resScale / cur
			}
		}
		ys = make([]float64, n)
		for i := range ys {
			ys[i] = a + b*xs[i] + res[i]
		}
		return xs, ys, res
	}

	// roundCounts is the measurement model: integer counts with a floor of
	// 1. (Figure 2's y-axis shows applications with a single reported
	// vulnerability, so the paper's "5-year history" must be age since the
	// first report rather than first-to-last span; see cvedb.SelectEstablished.)
	roundCounts := func(ys []float64) []int {
		out := make([]int, len(ys))
		for i, y := range ys {
			c := int(math.Round(math.Pow(10, y)))
			if c < 1 {
				c = 1
			}
			out[i] = c
		}
		return out
	}

	// Integer rounding and the floor flatten the measured regression
	// relative to the inner parameters (exactly as they do in the real CVE
	// data). For a given size-spread kappa, calibrate the inner (a, b,
	// resScale) with a damped fixed-point iteration so the fit measured on
	// the rounded counts matches the published numbers.
	calibrate := func(kappa float64) (xs, res []float64, counts []int) {
		a, b := p.Intercept, p.Slope
		varFit := p.Slope * p.Slope * (p.LogKLoCMax * p.LogKLoCMax / 12)
		resScale := math.Sqrt(varFit * (1 - p.R2) / p.R2)
		for iter := 0; iter < 30; iter++ {
			var ys []float64
			xs, ys, res = build(kappa, a, b, resScale)
			counts = roundCounts(ys)
			logCounts := make([]float64, n)
			for i, c := range counts {
				logCounts[i] = math.Log10(float64(c))
			}
			fit := stats.FitLinear(xs, logCounts)
			const step = 0.6
			a += step * (p.Intercept - fit.Intercept)
			b += step * (p.Slope - fit.Slope)
			if fit.R2 > 0.01 && fit.R2 < 0.99 {
				// R² = F/(F+V) => V = F(1/R² - 1): correct the residual scale.
				ratio := (1/p.R2 - 1) / (1/fit.R2 - 1)
				resScale *= math.Pow(ratio, step/2)
			}
		}
		return xs, res, counts
	}

	// Outer bisection on kappa: with the fit pinned by calibration, the
	// size spread Var(x) is what determines the heavy-tailed total, and
	// larger kappa (tighter spread) lowers it.
	totalOf := func(counts []int) int {
		t := 0
		for _, c := range counts {
			t += c
		}
		return t
	}
	kLo, kHi := 0.6, 8.0
	for i := 0; i < 25; i++ {
		mid := (kLo + kHi) / 2
		_, _, counts := calibrate(mid)
		if totalOf(counts) > p.TargetTotalCVEs {
			kLo = mid
		} else {
			kHi = mid
		}
	}
	xs, res, counts := calibrate((kLo + kHi) / 2)

	// Exact total: nudge counts by +/-1, preferring the largest counts
	// (where a unit change perturbs the log fit least), keeping the floor.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	for k := 0; totalOf(counts) < p.TargetTotalCVEs; k = (k + 1) % n {
		counts[order[k]]++
	}
	for k := 0; totalOf(counts) > p.TargetTotalCVEs; k = (k + 1) % n {
		if counts[order[k]] > 1 {
			counts[order[k]]--
		}
	}

	// --- Assemble apps, records, features.
	langs := langSequence(p.LangMix, rng)
	db := cvedb.New()
	c := &Corpus{Params: p, DB: db}
	for i := 0; i < n; i++ {
		l := langs[i]
		kloc := math.Pow(10, xs[i])
		name := fmt.Sprintf("app-%s-%03d", langTag(l), i)
		profile := AppProfile{
			App: cvedb.App{
				Name:     name,
				Language: l,
				KLoC:     kloc,
			},
			Quality:   res[i],
			VulnCount: counts[i],
		}
		// Figure 3: whole-program cyclomatic complexity ~ LoC / density,
		// density lognormal around 8 — an extra noise source on top of
		// size, so the cyclomatic correlation is at least as weak as LoC's.
		density := 8 * rng.LogNormal(0, 0.45)
		profile.App.Cyclomatic = kloc * 1000 / density
		profile.Features = genFeatures(&profile, rng.Split())
		if err := db.AddApp(profile.App); err != nil {
			return nil, err
		}
		recs := genRecords(&profile, p, rng.Split())
		for _, r := range recs {
			if err := db.AddRecord(r); err != nil {
				return nil, err
			}
		}
		st, err := db.StatsFor(name)
		if err != nil {
			return nil, err
		}
		profile.HighSeverity = st.HighSeverity
		profile.NetworkVector = st.NetworkVector
		profile.StackOverflow = st.StackOverflow
		c.Apps = append(c.Apps, profile)
	}
	return c, nil
}

// langSequence deals out the language mix in shuffled order.
func langSequence(mix map[lang.Language]int, rng *stats.RNG) []lang.Language {
	var seq []lang.Language
	// Deterministic iteration: fixed language order.
	for _, l := range []lang.Language{lang.C, lang.CPP, lang.Python, lang.Java} {
		for i := 0; i < mix[l]; i++ {
			seq = append(seq, l)
		}
	}
	rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
	return seq
}

func langTag(l lang.Language) string {
	switch l {
	case lang.C:
		return "c"
	case lang.CPP:
		return "cpp"
	case lang.Python:
		return "py"
	case lang.Java:
		return "java"
	default:
		return "x"
	}
}

// genRecords synthesizes the app's CVE history: publication dates spanning
// at least five years, CWE classes matching the language profile, and CVSS
// vectors whose severity/vector distributions reflect the app's latent
// quality and attack-surface features.
func genRecords(a *AppProfile, p Params, rng *stats.RNG) []cvedb.Record {
	nv := a.VulnCount
	recs := make([]cvedb.Record, 0, nv)
	// Spread publication dates over a window of at least 5 years within
	// [StartYear, EndYear].
	years := p.EndYear - p.StartYear
	spanYears := 5 + rng.Intn(years-5+1)
	startOff := 0
	if years > spanYears {
		startOff = rng.Intn(years - spanYears + 1)
	}
	start := time.Date(p.StartYear+startOff, 1, 1, 0, 0, 0, 0, time.UTC)
	span := time.Duration(spanYears) * 365 * 24 * time.Hour

	// Network propensity follows the app's network attack surface; memory
	// propensity follows language safety and unsafe-API density.
	netDensity := a.Features[metrics.FeatNetworkCalls] / (a.App.KLoC + 1)
	pNet := clamp01(0.25 + 0.1*math.Log10(1+netDensity*50) + 0.08*a.Quality)
	unsafe := !a.App.Language.Managed()
	pMem := 0.05
	if unsafe {
		unsafeDensity := a.Features[metrics.FeatUnsafeCalls] / (a.App.KLoC + 1)
		pMem = clamp01(0.35 + 0.1*math.Log10(1+unsafeDensity*50) + 0.06*a.Quality)
	}
	// Severity: latent quality shifts the CVSS impact distribution.
	pHighImpact := clamp01(0.45 + 0.12*a.Quality)

	for i := 0; i < nv; i++ {
		frac := 0.0
		if nv > 1 {
			frac = float64(i) / float64(nv-1)
		}
		// First and last records pin the span endpoints; the rest jitter.
		offset := time.Duration(frac * float64(span))
		if i != 0 && i != nv-1 {
			offset = time.Duration(rng.Float64() * float64(span))
		}
		published := start.Add(offset)
		id := fmt.Sprintf("CVE-%d-%s%04d", published.Year(), langTag(a.App.Language), i)

		cweID := sampleCWE(rng, a.App.Language, pMem)
		v3 := sampleVector(rng, pNet, pHighImpact, cweID)
		rec := cvedb.Record{
			ID:        id,
			App:       a.App.Name,
			Published: published,
			CWE:       cweID,
			V3:        v3.String(),
			Score:     v3.MustBaseScore(),
		}
		// Pre-2016 records predate v3 adoption: also carry a v2 vector.
		if published.Year() < 2016 {
			rec.V2 = approximateV2(v3).String()
		}
		recs = append(recs, rec)
	}
	return recs
}

// memoryCWEs/otherCWEs are the sampling pools.
var memoryCWEs = []cwe.ID{121, 122, 125, 787, 120, 416, 415, 476, 119}
var injectionCWEs = []cwe.ID{79, 89, 78, 94, 134, 22}
var otherCWEs = []cwe.ID{20, 200, 287, 352, 362, 400, 310, 264, 284, 502, 798, 190}

// allowedPool filters a CWE pool down to the entries the language can
// structurally exhibit.
func allowedPool(pool []cwe.ID, l lang.Language) []cwe.ID {
	if !l.Managed() {
		return pool
	}
	var out []cwe.ID
	for _, id := range pool {
		if e, ok := cwe.Lookup(id); ok && !e.ManagedSafe {
			out = append(out, id)
		}
	}
	return out
}

func sampleCWE(rng *stats.RNG, l lang.Language, pMem float64) cwe.ID {
	if mem := allowedPool(memoryCWEs, l); len(mem) > 0 && rng.Bool(pMem) {
		return mem[rng.Zipf(len(mem), 1.1)]
	}
	if inj := allowedPool(injectionCWEs, l); len(inj) > 0 && rng.Bool(0.45) {
		return inj[rng.Zipf(len(inj), 1.0)]
	}
	pool := allowedPool(otherCWEs, l)
	return pool[rng.Zipf(len(pool), 0.8)]
}

// sampleVector draws a CVSS v3 base vector consistent with the app's
// propensities and the weakness class.
func sampleVector(rng *stats.RNG, pNet, pHighImpact float64, id cwe.ID) cvss.V3 {
	v := cvss.V3{}
	if rng.Bool(pNet) {
		v.AV = cvss.AVNetwork
	} else {
		avs := []cvss.AttackVector{cvss.AVAdjacent, cvss.AVLocal, cvss.AVLocal, cvss.AVPhysical}
		v.AV = avs[rng.Intn(len(avs))]
	}
	if rng.Bool(0.7) {
		v.AC = cvss.ACLow
	} else {
		v.AC = cvss.ACHigh
	}
	prs := []cvss.PrivilegesRequired{cvss.PRNone, cvss.PRNone, cvss.PRLow, cvss.PRHigh}
	v.PR = prs[rng.Intn(len(prs))]
	if rng.Bool(0.65) {
		v.UI = cvss.UINone
	} else {
		v.UI = cvss.UIRequired
	}
	if rng.Bool(0.12) {
		v.S = cvss.ScopeChanged
	} else {
		v.S = cvss.ScopeUnchanged
	}
	impact := func() cvss.Impact {
		if rng.Bool(pHighImpact) {
			return cvss.ImpactHigh
		}
		if rng.Bool(0.6) {
			return cvss.ImpactLow
		}
		return cvss.ImpactNone
	}
	v.C, v.I, v.A = impact(), impact(), impact()
	// Memory-corruption bugs practically always threaten availability.
	if e, ok := cwe.Lookup(id); ok && e.Class == cwe.ClassMemory && v.A == cvss.ImpactNone {
		v.A = cvss.ImpactHigh
	}
	// Avoid the degenerate all-None vector (not a reportable vulnerability).
	if v.C == cvss.ImpactNone && v.I == cvss.ImpactNone && v.A == cvss.ImpactNone {
		v.I = cvss.ImpactLow
	}
	return v
}

// approximateV2 maps a v3 vector to the closest v2 base vector.
func approximateV2(v cvss.V3) cvss.V2 {
	out := cvss.V2{}
	switch v.AV {
	case cvss.AVNetwork:
		out.AV = cvss.V2AVNetwork
	case cvss.AVAdjacent:
		out.AV = cvss.V2AVAdjacent
	default:
		out.AV = cvss.V2AVLocal
	}
	if v.AC == cvss.ACLow {
		out.AC = cvss.V2ACLow
	} else {
		out.AC = cvss.V2ACHigh
	}
	switch v.PR {
	case cvss.PRNone:
		out.Au = cvss.V2AuNone
	case cvss.PRLow:
		out.Au = cvss.V2AuSingle
	default:
		out.Au = cvss.V2AuMultiple
	}
	conv := func(i cvss.Impact) cvss.V2Impact {
		switch i {
		case cvss.ImpactHigh:
			return cvss.V2ImpactComplete
		case cvss.ImpactLow:
			return cvss.V2ImpactPartial
		default:
			return cvss.V2ImpactNone
		}
	}
	out.C, out.I, out.A = conv(v.C), conv(v.I), conv(v.A)
	return out
}

func clamp01(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}
