package corpus

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func TestMiniTreeScales(t *testing.T) {
	c := defaultCorpus(t)
	small, large := c.Apps[0], c.Apps[0]
	for _, a := range c.Apps {
		if a.App.KLoC < small.App.KLoC {
			small = a
		}
		if a.App.KLoC > large.App.KLoC {
			large = a
		}
	}
	smallTree := MiniTree(small, 5, 1)
	largeTree := MiniTree(large, 5, 1)
	smallLoC, _ := metrics.CountTree(smallTree)
	largeLoC, _ := metrics.CountTree(largeTree)
	if largeLoC.Code <= smallLoC.Code {
		t.Fatalf("mini trees do not scale: %d vs %d", smallLoC.Code, largeLoC.Code)
	}
	// The cap holds (generated lines track the budget loosely).
	if largeLoC.Code > 5*1000*2 {
		t.Fatalf("cap exceeded: %d lines", largeLoC.Code)
	}
}

func TestMiniTreeLanguageFollowsApp(t *testing.T) {
	c := defaultCorpus(t)
	for _, a := range c.Apps {
		tree := MiniTree(a, 1, 2)
		primary := tree.PrimaryLanguage()
		if a.App.Language.Managed() {
			if primary != lang.Python {
				t.Fatalf("%s (%v): mini tree language %v", a.App.Name, a.App.Language, primary)
			}
		} else if primary != lang.MiniC {
			t.Fatalf("%s (%v): mini tree language %v", a.App.Name, a.App.Language, primary)
		}
		if len(c.Apps) > 20 {
			// Checking every app is slow; a prefix suffices after the first
			// managed app has been seen.
			if a.App.Language.Managed() {
				break
			}
		}
	}
}

func TestMiniTreeDeterministic(t *testing.T) {
	c := defaultCorpus(t)
	a := c.Apps[3]
	x := MiniTree(a, 2, 7)
	y := MiniTree(a, 2, 7)
	if len(x.Files) != len(y.Files) {
		t.Fatal("file counts differ")
	}
	for i := range x.Files {
		if x.Files[i].Content != y.Files[i].Content {
			t.Fatalf("file %d differs", i)
		}
	}
}

// The fidelity check: measured unsafe-call density on mini trees must
// correlate with the corpus's modeled quality residual across unsafe-
// language apps — the generative story survives the real extractors.
func TestMiniTreeFidelity(t *testing.T) {
	c := defaultCorpus(t)
	var qs, measured []float64
	count := 0
	for _, a := range c.Apps {
		if a.App.Language.Managed() {
			continue
		}
		count++
		if count > 40 { // enough for a stable rank correlation
			break
		}
		tree := MiniTree(a, 1, 3)
		fv := metrics.Extract(tree)
		loc, _ := metrics.CountTree(tree)
		if loc.Code == 0 {
			t.Fatalf("%s: empty mini tree", a.App.Name)
		}
		density := fv[metrics.FeatUnsafeCalls] / (float64(loc.Code) / 1000)
		qs = append(qs, a.Quality)
		measured = append(measured, density)
	}
	if r := stats.Spearman(qs, measured); r < 0.3 {
		t.Fatalf("quality/measured-unsafe correlation = %v, want > 0.3", r)
	}
}
