package corpus

import (
	"math"

	"repro/internal/lang"
	"repro/internal/langgen"
	"repro/internal/metrics"
)

// MiniTree generates an actual source tree for one corpus application,
// scaled down to at most maxKLoC thousand lines. The langgen spec is
// derived from the application's modeled features — hygiene (comment
// ratio, vulnerability density) follows the latent quality residual — so
// the real extractors measure distributions that echo the corpus model.
// This is the end-to-end bridge DESIGN.md §2.2 promises: figure-scale
// statistics come from the property model, while the full analysis path is
// exercised on these scaled trees.
func MiniTree(a AppProfile, maxKLoC float64, seed uint64) *metrics.Tree {
	kloc := math.Min(a.App.KLoC, maxKLoC)
	if kloc < 0.2 {
		kloc = 0.2
	}
	// A generated function body averages ~12 physical lines at the default
	// statement count; derive file/function counts from the size budget.
	const linesPerFunc = 12.0
	funcs := int(math.Max(2, kloc*1000/linesPerFunc))
	files := int(math.Max(1, math.Min(16, float64(funcs)/8)))
	funcsPerFile := funcs / files
	if funcsPerFile < 1 {
		funcsPerFile = 1
	}

	hygiene := math.Exp(0.9 * a.Quality) // matches genFeatures' latent scale
	vulnDensity := clamp01(0.12 * hygiene)
	commentRate := clamp01(0.25 / math.Sqrt(hygiene))
	genLang := lang.MiniC
	if a.App.Language.Managed() {
		// Managed apps get Python-flavoured trees: no unsafe C APIs, token
		// metrics only — mirroring how the real analyses degrade there.
		genLang = lang.Python
		vulnDensity = clamp01(0.04 * hygiene)
	}

	spec := langgen.Spec{
		Language:     genLang,
		Files:        files,
		FuncsPerFile: funcsPerFile,
		StmtsPerFunc: 8,
		BranchProb:   0.25,
		LoopProb:     0.12,
		CallProb:     0.18,
		CommentRate:  commentRate,
		VulnDensity:  vulnDensity,
		Seed:         seed ^ hashName(a.App.Name),
	}
	tree := langgen.Generate(spec)
	tree.Name = a.App.Name + "-mini"
	return tree
}

// hashName gives each application a stable generation stream.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
