package minic

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// FuzzParse is the native fuzz target behind verify.sh's fuzz smoke: the
// parser must never panic on any input — it either produces an AST or a
// ParseError. The seeds cover the grammar's main constructs plus byte soup.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int main(void) { return 0; }",
		"int f(int x) { if (x > 0) { return x; } return -x; }",
		"int g(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }",
		"int h(void) { int a[4]; while (a[0] < 10) { a[0] = a[0] + 1; break; } return a[0]; }",
		"int main( { this does not parse",
		"@@@ not c at all (((",
		"int\nf(void)\n{\nbogus!\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		_, _ = Parse(src)
	})
}

// Property: the parser never panics and never loops on arbitrary byte soup —
// it either produces an AST or a ParseError.
func TestParseRobustnessRandomBytes(t *testing.T) {
	chars := []byte("intvoidreturnifwhileforbreak(){}[];=+-*/%<>!&|, \n\t0123456789abcxyz\"'")
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(300)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = chars[r.Intn(len(chars))]
		}
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("panic on input %q: %v", buf, rec)
			}
		}()
		_, err := Parse(string(buf))
		_ = err // error or success are both acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating a valid program by deleting one random byte never
// panics the parser (truncation robustness).
func TestParseRobustnessMutation(t *testing.T) {
	base := `
int helper(int a, int b) {
	int c = a * b;
	if (c > 100) { return c - 100; }
	while (c < 0) { c += 10; }
	for (int i = 0; i < b; i++) { c = c + i; }
	return c;
}
int main(void) {
	int arr[8];
	arr[0] = helper(3, 4);
	return arr[0];
}`
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		pos := r.Intn(len(base))
		mutated := base[:pos] + base[pos+1:]
		defer func() {
			if rec := recover(); rec != nil {
				t.Errorf("panic on mutation at %d: %v", pos, rec)
			}
		}()
		_, _ = Parse(mutated)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a parse error always names a line within the input.
func TestParseErrorLineInRange(t *testing.T) {
	inputs := []string{
		"int f(void) { return }",
		"int f(void) { int x = ; }",
		"int f(void) { if (x { } }",
		"int\nf(void)\n{\nbogus!\n}",
	}
	for _, src := range inputs {
		_, err := Parse(src)
		if err == nil {
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Fatalf("error type %T for %q", err, src)
		}
		lines := strings.Count(src, "\n") + 1
		if pe.Line < 1 || pe.Line > lines {
			t.Fatalf("error line %d outside 1..%d for %q", pe.Line, lines, src)
		}
	}
}
