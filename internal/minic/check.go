package minic

import "fmt"

// check runs the semantic checks: declaration before use, scalar/array
// consistency, no duplicate declarations in one scope, and break/continue
// only inside loops. Calls to undeclared functions are allowed — they model
// external library functions, which the taint analysis treats as sources or
// sinks by name.
func check(prog *Program) error {
	funcNames := map[string]bool{}
	for _, f := range prog.Funcs {
		if funcNames[f.Name] {
			return fmt.Errorf("minic: line %d: duplicate function %q", f.Line, f.Name)
		}
		funcNames[f.Name] = true
	}
	globals := newScope(nil)
	for _, g := range prog.Globals {
		if err := globals.declare(g.Name, g.Size > 0, g.Line); err != nil {
			return err
		}
		if g.Init != nil {
			if err := checkExpr(g.Init, globals); err != nil {
				return err
			}
		}
	}
	for _, f := range prog.Funcs {
		sc := newScope(globals)
		for _, p := range f.Params {
			if err := sc.declare(p, false, f.Line); err != nil {
				return err
			}
		}
		if err := checkBlock(f.Body, sc, 0); err != nil {
			return fmt.Errorf("minic: in %s: %w", f.Name, err)
		}
	}
	return nil
}

type scope struct {
	parent *scope
	vars   map[string]bool // name -> isArray
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]bool{}}
}

func (s *scope) declare(name string, isArray bool, line int) error {
	if _, dup := s.vars[name]; dup {
		return fmt.Errorf("line %d: %q redeclared", line, name)
	}
	s.vars[name] = isArray
	return nil
}

// lookup returns (isArray, found).
func (s *scope) lookup(name string) (bool, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if isArr, ok := sc.vars[name]; ok {
			return isArr, true
		}
	}
	return false, false
}

func checkBlock(b *Block, parent *scope, loopDepth int) error {
	sc := newScope(parent)
	for _, st := range b.Stmts {
		if err := checkStmt(st, sc, loopDepth); err != nil {
			return err
		}
	}
	return nil
}

func checkStmt(st Stmt, sc *scope, loopDepth int) error {
	switch s := st.(type) {
	case *Block:
		return checkBlock(s, sc, loopDepth)
	case *DeclStmt:
		if s.Init != nil {
			if err := checkExpr(s.Init, sc); err != nil {
				return err
			}
		}
		return sc.declare(s.Name, s.Size > 0, s.Line)
	case *AssignStmt:
		if err := checkLValue(s.Target, sc); err != nil {
			return err
		}
		return checkExpr(s.Value, sc)
	case *IfStmt:
		if err := checkExpr(s.Cond, sc); err != nil {
			return err
		}
		if err := checkBlock(s.Then, sc, loopDepth); err != nil {
			return err
		}
		if s.Else != nil {
			return checkBlock(s.Else, sc, loopDepth)
		}
		return nil
	case *WhileStmt:
		if err := checkExpr(s.Cond, sc); err != nil {
			return err
		}
		return checkBlock(s.Body, sc, loopDepth+1)
	case *ForStmt:
		inner := newScope(sc) // for-init declarations scope over the loop
		if s.Init != nil {
			if err := checkStmt(s.Init, inner, loopDepth); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := checkExpr(s.Cond, inner); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := checkStmt(s.Post, inner, loopDepth); err != nil {
				return err
			}
		}
		return checkBlock(s.Body, inner, loopDepth+1)
	case *ReturnStmt:
		if s.Value != nil {
			return checkExpr(s.Value, sc)
		}
		return nil
	case *ExprStmt:
		return checkExpr(s.X, sc)
	case *BreakStmt:
		if loopDepth == 0 {
			return fmt.Errorf("line %d: break outside loop", s.Line)
		}
		return nil
	case *ContinueStmt:
		if loopDepth == 0 {
			return fmt.Errorf("line %d: continue outside loop", s.Line)
		}
		return nil
	default:
		return fmt.Errorf("line %d: unknown statement %T", st.Pos(), st)
	}
}

func checkLValue(lv LValue, sc *scope) error {
	switch x := lv.(type) {
	case *VarRef:
		isArr, ok := sc.lookup(x.Name)
		if !ok {
			return fmt.Errorf("line %d: %q undeclared", x.Line, x.Name)
		}
		if isArr {
			return fmt.Errorf("line %d: cannot assign to array %q without index", x.Line, x.Name)
		}
		return nil
	case *IndexExpr:
		isArr, ok := sc.lookup(x.Name)
		if !ok {
			return fmt.Errorf("line %d: %q undeclared", x.Line, x.Name)
		}
		if !isArr {
			return fmt.Errorf("line %d: %q is not an array", x.Line, x.Name)
		}
		return checkExpr(x.Index, sc)
	}
	return fmt.Errorf("invalid lvalue")
}

func checkExpr(e Expr, sc *scope) error {
	switch x := e.(type) {
	case *NumLit:
		return nil
	case *VarRef:
		isArr, ok := sc.lookup(x.Name)
		if !ok {
			return fmt.Errorf("line %d: %q undeclared", x.Line, x.Name)
		}
		if isArr {
			return fmt.Errorf("line %d: array %q used as scalar", x.Line, x.Name)
		}
		return nil
	case *IndexExpr:
		isArr, ok := sc.lookup(x.Name)
		if !ok {
			return fmt.Errorf("line %d: %q undeclared", x.Line, x.Name)
		}
		if !isArr {
			return fmt.Errorf("line %d: %q is not an array", x.Line, x.Name)
		}
		return checkExpr(x.Index, sc)
	case *BinaryExpr:
		if err := checkExpr(x.L, sc); err != nil {
			return err
		}
		return checkExpr(x.R, sc)
	case *UnaryExpr:
		return checkExpr(x.X, sc)
	case *CallExpr:
		for _, a := range x.Args {
			if err := checkExpr(a, sc); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("line %d: unknown expression %T", e.Pos(), e)
	}
}
