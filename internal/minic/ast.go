// Package minic defines MiniC, the analyzable C subset used by the deep
// static analyses (§4.1's control-flow, data-flow, and symbolic-execution
// properties). MiniC has int scalars and arrays, the usual expression
// operators, if/while/for control flow, and function calls — enough to lower
// to a basic-block IR and run precise analyses, while staying parseable by a
// small recursive-descent parser.
package minic

import "fmt"

// Node is implemented by every AST node.
type Node interface {
	Pos() int // 1-based source line
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*DeclStmt
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Line   int
}

// Pos implements Node.
func (f *FuncDecl) Pos() int { return f.Line }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt declares an int scalar (Size == 0) or array (Size > 0), with an
// optional scalar initializer.
type DeclStmt struct {
	Name string
	Size int
	Init Expr // nil if none
	Line int
}

// AssignStmt assigns Value to Target.
type AssignStmt struct {
	Target LValue
	Value  Expr
	Line   int
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // nil if none
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Line int
}

// ForStmt is a for loop; any clause may be nil.
type ForStmt struct {
	Init Stmt // AssignStmt or DeclStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *Block
	Line int
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Value Expr // nil for bare return
	Line  int
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	X    Expr
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Line int }

// Pos implementations.
func (b *Block) Pos() int        { return b.Line }
func (d *DeclStmt) Pos() int     { return d.Line }
func (a *AssignStmt) Pos() int   { return a.Line }
func (i *IfStmt) Pos() int       { return i.Line }
func (w *WhileStmt) Pos() int    { return w.Line }
func (f *ForStmt) Pos() int      { return f.Line }
func (r *ReturnStmt) Pos() int   { return r.Line }
func (e *ExprStmt) Pos() int     { return e.Line }
func (s *BreakStmt) Pos() int    { return s.Line }
func (s *ContinueStmt) Pos() int { return s.Line }

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// LValue is an assignable expression: a variable or array element.
type LValue interface {
	Expr
	lvalue()
}

// NumLit is an integer literal.
type NumLit struct {
	Value int64
	Line  int
}

// VarRef references a scalar variable.
type VarRef struct {
	Name string
	Line int
}

// IndexExpr references an array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// BinaryExpr applies Op to L and R. Ops: + - * / % < <= > >= == != && ||.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnaryExpr applies Op ("-" or "!") to X.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// Pos implementations.
func (n *NumLit) Pos() int     { return n.Line }
func (v *VarRef) Pos() int     { return v.Line }
func (x *IndexExpr) Pos() int  { return x.Line }
func (b *BinaryExpr) Pos() int { return b.Line }
func (u *UnaryExpr) Pos() int  { return u.Line }
func (c *CallExpr) Pos() int   { return c.Line }

func (*NumLit) expr()     {}
func (*VarRef) expr()     {}
func (*IndexExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*CallExpr) expr()   {}

func (*VarRef) lvalue()    {}
func (*IndexExpr) lvalue() {}

// String renders expressions compactly for diagnostics.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumLit:
		return fmt.Sprintf("%d", x.Value)
	case *VarRef:
		return x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", x.Name, ExprString(x.Index))
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *UnaryExpr:
		return fmt.Sprintf("%s%s", x.Op, ExprString(x.X))
	case *CallExpr:
		s := x.Name + "("
		for i, a := range x.Args {
			if i > 0 {
				s += ", "
			}
			s += ExprString(a)
		}
		return s + ")"
	case nil:
		return "<nil>"
	default:
		return "<?>"
	}
}
