package minic

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseMinimal(t *testing.T) {
	p := mustParse(t, "int main(void) { return 0; }")
	if len(p.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	f := p.Funcs[0]
	if f.Name != "main" || len(f.Params) != 0 {
		t.Fatalf("func = %+v", f)
	}
	if len(f.Body.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Body.Stmts))
	}
	ret, ok := f.Body.Stmts[0].(*ReturnStmt)
	if !ok {
		t.Fatalf("stmt = %T", f.Body.Stmts[0])
	}
	if n, ok := ret.Value.(*NumLit); !ok || n.Value != 0 {
		t.Fatalf("return value = %v", ExprString(ret.Value))
	}
}

func TestParseParams(t *testing.T) {
	p := mustParse(t, "int add(int a, int b) { return a + b; }")
	f := p.Funcs[0]
	if len(f.Params) != 2 || f.Params[0] != "a" || f.Params[1] != "b" {
		t.Fatalf("params = %v", f.Params)
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "int f(int a, int b, int c) { return a + b * c; }")
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if got := ExprString(ret.Value); got != "(a + (b * c))" {
		t.Fatalf("precedence = %s", got)
	}
	p = mustParse(t, "int f(int a, int b, int c) { return (a + b) * c; }")
	ret = p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if got := ExprString(ret.Value); got != "((a + b) * c)" {
		t.Fatalf("parens = %s", got)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	p := mustParse(t, "int f(int a, int b) { return a < 1 && b > 2 || a == b; }")
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	want := "(((a < 1) && (b > 2)) || (a == b))"
	if got := ExprString(ret.Value); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestParseUnary(t *testing.T) {
	p := mustParse(t, "int f(int a) { return -a + !a; }")
	ret := p.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	if got := ExprString(ret.Value); got != "(-a + !a)" {
		t.Fatalf("unary = %s", got)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
int f(int x) {
	int y = 0;
	if (x > 0) {
		y = 1;
	} else {
		y = 2;
	}
	while (y < 10) {
		y = y + 1;
	}
	for (int i = 0; i < x; i++) {
		y += i;
	}
	return y;
}`
	p := mustParse(t, src)
	body := p.Funcs[0].Body.Stmts
	if len(body) != 5 {
		t.Fatalf("stmts = %d", len(body))
	}
	iff := body[1].(*IfStmt)
	if iff.Else == nil {
		t.Fatal("else missing")
	}
	forStmt := body[3].(*ForStmt)
	if forStmt.Init == nil || forStmt.Cond == nil || forStmt.Post == nil {
		t.Fatalf("for clauses = %+v", forStmt)
	}
}

func TestParseSingleStatementBodies(t *testing.T) {
	p := mustParse(t, "int f(int x) { if (x) return 1; else return 0; }")
	iff := p.Funcs[0].Body.Stmts[0].(*IfStmt)
	if len(iff.Then.Stmts) != 1 || len(iff.Else.Stmts) != 1 {
		t.Fatalf("synthetic blocks broken: %+v", iff)
	}
}

func TestParseCompoundAssign(t *testing.T) {
	p := mustParse(t, "int f(int x) { x += 2; x *= 3; x--; return x; }")
	body := p.Funcs[0].Body.Stmts
	a := body[0].(*AssignStmt)
	if got := ExprString(a.Value); got != "(x + 2)" {
		t.Fatalf("+= desugars to %s", got)
	}
	dec := body[2].(*AssignStmt)
	if got := ExprString(dec.Value); got != "(x - 1)" {
		t.Fatalf("-- desugars to %s", got)
	}
}

func TestParseArrays(t *testing.T) {
	src := `
int g(void) {
	int buf[16];
	buf[0] = 42;
	buf[1] = buf[0] + 1;
	return buf[1];
}`
	p := mustParse(t, src)
	body := p.Funcs[0].Body.Stmts
	d := body[0].(*DeclStmt)
	if d.Size != 16 {
		t.Fatalf("array size = %d", d.Size)
	}
	asn := body[1].(*AssignStmt)
	if _, ok := asn.Target.(*IndexExpr); !ok {
		t.Fatalf("target = %T", asn.Target)
	}
}

func TestParseCalls(t *testing.T) {
	src := `
int f(int x) {
	int r = helper(x, 2 * x);
	log_value(r);
	return r;
}`
	p := mustParse(t, src)
	body := p.Funcs[0].Body.Stmts
	d := body[0].(*DeclStmt)
	call := d.Init.(*CallExpr)
	if call.Name != "helper" || len(call.Args) != 2 {
		t.Fatalf("call = %s", ExprString(call))
	}
	es := body[1].(*ExprStmt)
	if es.X.(*CallExpr).Name != "log_value" {
		t.Fatalf("expr stmt = %s", ExprString(es.X))
	}
}

func TestParseGlobals(t *testing.T) {
	p := mustParse(t, "int limit = 10;\nint table[4];\nint main(void) { return limit; }")
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %d", len(p.Globals))
	}
	if p.Globals[1].Size != 4 {
		t.Fatalf("global array size = %d", p.Globals[1].Size)
	}
}

func TestParseBreakContinue(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	while (1) {
		if (s > n) break;
		if (s % 2) { s++; continue; }
		s += 2;
	}
	return s;
}`
	mustParse(t, src)
}

func TestParseComments(t *testing.T) {
	src := "// leading\nint main(void) { /* inline */ return 0; }\n"
	mustParse(t, src)
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"float main(void) { }", "expected declaration"},
		{"int main(void) { return 0 }", `expected ";"`},
		{"int main(void) { x = 1; }", "undeclared"},
		{"int main(void) { int x; int x; }", "redeclared"},
		{"int main(void) { break; }", "break outside loop"},
		{"int main(void) { continue; }", "continue outside loop"},
		{"int main(void) { int a[4]; a = 1; }", "without index"},
		{"int main(void) { int a; a[0] = 1; }", "not an array"},
		{"int main(void) { int a[4]; return a; }", "used as scalar"},
		{"int main(void) { int a[0]; }", "bad array size"},
		{"int main(void) { int a[4] = 1; }", "array initializers"},
		{"int f(void) { } int f(void) { }", "duplicate function"},
		{"int main(void) {", "unterminated block"},
		{"int main(void) { return (1; }", `expected ")"`},
		{"void x = 1;", "void globals"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error = %q, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("int main(void) {\n\n  bogus!\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
}

func TestParseScopesNested(t *testing.T) {
	// Shadowing in an inner block is allowed; use after the block is not.
	src := `
int f(int x) {
	if (x) {
		int y = 1;
		x = y;
	}
	return x;
}`
	mustParse(t, src)
	bad := `
int f(int x) {
	if (x) {
		int y = 1;
	}
	return y;
}`
	if _, err := Parse(bad); err == nil {
		t.Fatal("out-of-scope use accepted")
	}
}

func TestParseForScope(t *testing.T) {
	// The for-init declaration is visible in cond/post/body but not after.
	src := "int f(void) { for (int i = 0; i < 3; i++) { i += 1; } return 0; }"
	mustParse(t, src)
	bad := "int f(void) { for (int i = 0; i < 3; i++) { } return i; }"
	if _, err := Parse(bad); err == nil {
		t.Fatal("for-scope leak accepted")
	}
}

func TestExprStringNil(t *testing.T) {
	if ExprString(nil) != "<nil>" {
		t.Fatal("nil expr string")
	}
}

func TestParseCallToUndeclaredFunctionOK(t *testing.T) {
	// External functions (taint sources/sinks) need no declaration.
	mustParse(t, "int main(void) { int x = read_input(); send(x); return 0; }")
}
