package minic

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/lang"
	"repro/internal/lexer"
)

// ParseError is a syntax error with a source line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
}

// tokBuf is pooled per-parse token scratch. The AST retains only strings
// (substrings of src) and ints, never token slices, so the buffers are safe
// to recycle the moment Parse returns.
type tokBuf struct {
	all, code []lexer.Token
}

var tokPool = sync.Pool{New: func() any { return new(tokBuf) }}

// Parse parses a MiniC translation unit.
func Parse(src string) (*Program, error) {
	buf := tokPool.Get().(*tokBuf)
	defer tokPool.Put(buf)
	buf.all = lexer.TokenizeInto(buf.all[:0], src, lang.MiniC)
	buf.code = lexer.CodeInto(buf.code[:0], buf.all)
	p := &parser{toks: buf.code}
	prog := &Program{}
	for !p.atEOF() {
		if err := p.parseTopLevel(prog); err != nil {
			return nil, err
		}
	}
	if err := check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []lexer.Token
	pos  int
}

func (p *parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() lexer.Token {
	if p.atEOF() {
		return lexer.Token{Kind: lexer.EOF, Line: p.lastLine()}
	}
	return p.toks[p.pos]
}

func (p *parser) peekAt(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return lexer.Token{Kind: lexer.EOF, Line: p.lastLine()}
	}
	return p.toks[p.pos+off]
}

func (p *parser) lastLine() int32 {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].Line
}

func (p *parser) next() lexer.Token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(text string) (lexer.Token, error) {
	t := p.peek()
	if t.Text() != text {
		return t, p.errf(int(t.Line), "expected %q, found %q", text, t.Text())
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (lexer.Token, error) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return t, p.errf(int(t.Line), "expected identifier, found %q", t.Text())
	}
	return p.next(), nil
}

// parseTopLevel parses one function definition or global declaration.
func (p *parser) parseTopLevel(prog *Program) error {
	t := p.peek()
	if t.Text() != "int" && t.Text() != "void" {
		return p.errf(int(t.Line), "expected declaration, found %q", t.Text())
	}
	// Lookahead: "int name (" is a function, otherwise a global decl.
	if p.peekAt(1).Kind == lexer.Ident && p.peekAt(2).Text() == "(" {
		fn, err := p.parseFunc()
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	if t.Text() == "void" {
		return p.errf(int(t.Line), "void globals are not allowed")
	}
	d, err := p.parseDecl()
	if err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, d)
	return nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	retTok := p.next() // int or void
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: nameTok.Text(), Line: int(retTok.Line)}
	for p.peek().Text() != ")" {
		if p.peek().Text() == "void" && p.peekAt(1).Text() == ")" {
			p.next()
			break
		}
		if _, err := p.expect("int"); err != nil {
			return nil, err
		}
		param, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, param.Text())
		if p.peek().Text() == "," {
			p.next()
			continue
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	open, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	b := &Block{Line: int(open.Line)}
	for p.peek().Text() != "}" {
		if p.atEOF() {
			return nil, p.errf(int(open.Line), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

// parseDecl parses "int name [ '[' N ']' ] [ '=' expr ] ';'".
func (p *parser) parseDecl() (*DeclStmt, error) {
	intTok, err := p.expect("int")
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: nameTok.Text(), Line: int(intTok.Line)}
	if p.peek().Text() == "[" {
		p.next()
		sizeTok := p.peek()
		if sizeTok.Kind != lexer.Number {
			return nil, p.errf(int(sizeTok.Line), "array size must be a literal, found %q", sizeTok.Text())
		}
		n, err := strconv.Atoi(sizeTok.Text())
		if err != nil || n <= 0 {
			return nil, p.errf(int(sizeTok.Line), "bad array size %q", sizeTok.Text())
		}
		p.next()
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		d.Size = n
	}
	if p.peek().Text() == "=" {
		if d.Size > 0 {
			return nil, p.errf(int(p.peek().Line), "array initializers are not supported")
		}
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Text() {
	case "{":
		return p.parseBlock()
	case "int":
		return p.parseDecl()
	case "if":
		return p.parseIf()
	case "while":
		return p.parseWhile()
	case "for":
		return p.parseFor()
	case "return":
		p.next()
		r := &ReturnStmt{Line: int(t.Line)}
		if p.peek().Text() != ";" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return r, nil
	case "break":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: int(t.Line)}, nil
	case "continue":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: int(t.Line)}, nil
	}
	s, err := p.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSimpleStmt parses an assignment, compound assignment, increment, or
// call, without the trailing semicolon (for use in for-clauses too).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	t := p.peek()
	if t.Kind != lexer.Ident {
		return nil, p.errf(int(t.Line), "expected statement, found %q", t.Text())
	}
	// Call statement: ident '(' ...
	if p.peekAt(1).Text() == "(" {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call, ok := e.(*CallExpr)
		if !ok {
			return nil, p.errf(int(t.Line), "expression statement must be a call")
		}
		return &ExprStmt{X: call, Line: int(t.Line)}, nil
	}
	// LValue.
	name := p.next()
	var target LValue = &VarRef{Name: name.Text(), Line: int(name.Line)}
	if p.peek().Text() == "[" {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		target = &IndexExpr{Name: name.Text(), Index: idx, Line: int(name.Line)}
	}
	op := p.next()
	switch op.Text() {
	case "=":
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: target, Value: v, Line: int(name.Line)}, nil
	case "+=", "-=", "*=", "/=", "%=":
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		bin := &BinaryExpr{Op: op.Text()[:1], L: lvalueExpr(target), R: v, Line: int(name.Line)}
		return &AssignStmt{Target: target, Value: bin, Line: int(name.Line)}, nil
	case "++", "--":
		binOp := "+"
		if op.Text() == "--" {
			binOp = "-"
		}
		bin := &BinaryExpr{Op: binOp, L: lvalueExpr(target), R: &NumLit{Value: 1, Line: int(name.Line)}, Line: int(name.Line)}
		return &AssignStmt{Target: target, Value: bin, Line: int(name.Line)}, nil
	default:
		return nil, p.errf(int(op.Line), "expected assignment operator, found %q", op.Text())
	}
}

// lvalueExpr reuses an LValue as a read expression.
func lvalueExpr(lv LValue) Expr {
	switch x := lv.(type) {
	case *VarRef:
		return &VarRef{Name: x.Name, Line: x.Line}
	case *IndexExpr:
		return &IndexExpr{Name: x.Name, Index: x.Index, Line: x.Line}
	}
	return nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Line: int(t.Line)}
	if p.peek().Text() == "else" {
		p.next()
		els, err := p.parseStmtAsBlock()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

// parseStmtAsBlock parses either a block or a single statement wrapped in a
// synthetic block, so if/while bodies are uniform.
func (p *parser) parseStmtAsBlock() (*Block, error) {
	if p.peek().Text() == "{" {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &Block{Stmts: []Stmt{s}, Line: s.Pos()}, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: int(t.Line)}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	f := &ForStmt{Line: int(t.Line)}
	if p.peek().Text() != ";" {
		var init Stmt
		var err error
		if p.peek().Text() == "int" {
			init, err = p.parseDecl() // consumes its own ';'
			if err != nil {
				return nil, err
			}
			f.Init = init
		} else {
			init, err = p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			f.Init = init
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if p.peek().Text() != ";" {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.peek().Text() != ")" {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		f.Post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtAsBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression parsing: precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := binPrec[op.Text()]
		if !ok || prec < minPrec || op.Kind != lexer.Operator {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op.Text(), L: left, R: right, Line: int(op.Line)}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Text() == "-" || t.Text() == "!" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text(), X: x, Line: int(t.Line)}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == lexer.Number:
		p.next()
		v, err := strconv.ParseInt(t.Text(), 0, 64)
		if err != nil {
			return nil, p.errf(int(t.Line), "bad number %q", t.Text())
		}
		return &NumLit{Value: v, Line: int(t.Line)}, nil
	case t.Kind == lexer.Ident:
		p.next()
		switch p.peek().Text() {
		case "(":
			p.next()
			call := &CallExpr{Name: t.Text(), Line: int(t.Line)}
			for p.peek().Text() != ")" {
				if p.atEOF() {
					return nil, p.errf(int(t.Line), "unterminated call")
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.peek().Text() == "," {
					p.next()
				}
			}
			p.next() // )
			return call, nil
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text(), Index: idx, Line: int(t.Line)}, nil
		default:
			return &VarRef{Name: t.Text(), Line: int(t.Line)}, nil
		}
	case t.Text() == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(int(t.Line), "expected expression, found %q", t.Text())
	}
}
