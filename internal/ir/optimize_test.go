package ir

import (
	"strings"
	"testing"
)

func TestOptimizeFoldsConstants(t *testing.T) {
	f := MustLowerSource("int f(void) { int x = 2 + 3 * 4; return x; }").Funcs[0]
	Optimize(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
	ret, ok := f.Entry().Term.(*Ret)
	if !ok {
		t.Fatalf("terminator = %T", f.Entry().Term)
	}
	if c, ok := ret.Value.(Const); !ok || c.V != 14 {
		t.Fatalf("return = %v, want constant 14:\n%s", ret.Value, f)
	}
}

func TestOptimizePrunesDeadBranch(t *testing.T) {
	f := MustLowerSource(`
int f(void) {
	int debug = 0;
	if (debug) {
		expensive_diagnostics();
	}
	return 1;
}`).Funcs[0]
	Optimize(f)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok && c.Name == "expensive_diagnostics" {
				t.Fatalf("dead call survived:\n%s", f)
			}
		}
		if _, ok := b.Term.(*Branch); ok {
			t.Fatalf("constant branch survived:\n%s", f)
		}
	}
}

func TestOptimizeKeepsDivByZero(t *testing.T) {
	// 1/0 must NOT fold away: runtime behaviour (a trap) is observable.
	f := MustLowerSource("int f(void) { return 1 / 0; }").Funcs[0]
	Optimize(f)
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if bo, ok := in.(*BinOp); ok && bo.Op == "/" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("division by zero folded away:\n%s", f)
	}
}

func TestOptimizeCopyPropagation(t *testing.T) {
	f := MustLowerSource(`
int f(int a) {
	int b = a;
	int c = b;
	return c + c;
}`).Funcs[0]
	Optimize(f)
	// The addition should read 'a' directly after propagation.
	propagated := false
	for _, in := range f.Entry().Instrs {
		if bo, ok := in.(*BinOp); ok && bo.Op == "+" {
			if l, ok := bo.L.(Var); ok && l.Name == "a" {
				propagated = true
			}
		}
	}
	if !propagated {
		t.Fatalf("copies not propagated:\n%s", f)
	}
}

func TestOptimizeCallClobbersGlobals(t *testing.T) {
	prog := MustLowerSource(`
int g = 1;
int bump(void) { g = g + 1; return g; }
int f(void) {
	g = 5;
	bump();
	return g;
}`)
	OptimizeProgram(prog)
	f, _ := prog.FuncByName("f")
	ret := f.Blocks[len(f.Blocks)-1].Term.(*Ret)
	// g must NOT have been constant-propagated past the call.
	if _, isConst := ret.Value.(Const); isConst {
		t.Fatalf("global folded across a call:\n%s", f)
	}
}

func TestOptimizeLocalsSurviveCalls(t *testing.T) {
	prog := MustLowerSource(`
int g = 1;
int f(void) {
	int local = 7;
	log_event(0);
	return local;
}`)
	OptimizeProgram(prog)
	f, _ := prog.FuncByName("f")
	ret := f.Blocks[len(f.Blocks)-1].Term.(*Ret)
	// With program context, the local constant propagates across the call.
	if c, ok := ret.Value.(Const); !ok || c.V != 7 {
		t.Fatalf("local not propagated across call: %v\n%s", ret.Value, f)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	f := MustLowerSource(`
int f(int x) {
	int a = 1 + 2;
	if (a > 2) { x = x + a; }
	return x;
}`).Funcs[0]
	Optimize(f)
	first := f.String()
	Optimize(f)
	if second := f.String(); second != first {
		t.Fatalf("not idempotent:\n%s\nvs\n%s", first, second)
	}
}

func TestOptimizeShrinksGeneratedDump(t *testing.T) {
	src := `
int f(int x) {
	int mode = 2;
	int scale = mode * 10;
	if (mode == 1) { return 0 - 1; }
	if (mode == 2) { return x * scale; }
	return 0;
}`
	f := MustLowerSource(src).Funcs[0]
	before := strings.Count(f.String(), "\n")
	Optimize(f)
	after := strings.Count(f.String(), "\n")
	if after >= before {
		t.Fatalf("optimization did not shrink: %d -> %d\n%s", before, after, f)
	}
}
