package ir

import (
	"strings"
	"testing"
)

// TestInstructionSurfaces pins the Defs/Uses/SrcLine/String contract of
// every instruction and terminator type — the API the analyses are built
// on.
func TestInstructionSurfaces(t *testing.T) {
	dst := Temp{ID: 1}
	v := Var{Name: "x"}
	c := Const{V: 3}
	blk := &Block{ID: 0, Name: "b0"}
	other := &Block{ID: 1, Name: "b1"}

	cases := []struct {
		in       Instr
		wantDefs Dest
		wantUses int
		wantStr  string
		line     int
	}{
		{&Assign{Dst: dst, Src: c, Line: 4}, dst, 1, "t1 = 3", 4},
		{&BinOp{Dst: dst, Op: "+", L: v, R: c, Line: 5}, dst, 2, "t1 = x + 3", 5},
		{&UnOp{Dst: dst, Op: "-", X: v, Line: 6}, dst, 1, "t1 = -x", 6},
		{&Call{Dst: dst, Name: "f", Args: []Value{v, c}, Line: 7}, dst, 2, "t1 = call f(x, 3)", 7},
		{&Call{Dst: nil, Name: "g", Line: 8}, nil, 0, "call g()", 8},
		{&ArrayLoad{Dst: dst, Array: "a", Index: c, Line: 9}, dst, 1, "t1 = a[3]", 9},
		{&ArrayStore{Array: "a", Index: c, Src: v, Line: 10}, nil, 2, "a[3] = x", 10},
	}
	for _, tc := range cases {
		if got := tc.in.Defs(); got != tc.wantDefs {
			t.Errorf("%T Defs = %v, want %v", tc.in, got, tc.wantDefs)
		}
		if got := len(tc.in.Uses()); got != tc.wantUses {
			t.Errorf("%T Uses = %d, want %d", tc.in, got, tc.wantUses)
		}
		if got := tc.in.String(); got != tc.wantStr {
			t.Errorf("%T String = %q, want %q", tc.in, got, tc.wantStr)
		}
		if got := tc.in.SrcLine(); got != tc.line {
			t.Errorf("%T SrcLine = %d, want %d", tc.in, got, tc.line)
		}
	}

	terms := []struct {
		term      Terminator
		wantSuccs int
		wantUses  int
		wantStr   string
	}{
		{&Jump{Target: blk}, 1, 0, "jump b0"},
		{&Branch{Cond: v, True: blk, False: other}, 2, 1, "branch x ? b0 : b1"},
		{&Ret{Value: c}, 0, 1, "ret 3"},
		{&Ret{}, 0, 0, "ret"},
	}
	for _, tc := range terms {
		if got := len(tc.term.Succs()); got != tc.wantSuccs {
			t.Errorf("%T Succs = %d, want %d", tc.term, got, tc.wantSuccs)
		}
		if got := len(tc.term.Uses()); got != tc.wantUses {
			t.Errorf("%T Uses = %d, want %d", tc.term, got, tc.wantUses)
		}
		if got := tc.term.String(); got != tc.wantStr {
			t.Errorf("%T String = %q, want %q", tc.term, got, tc.wantStr)
		}
	}
}

func TestBlockSuccsNilTerm(t *testing.T) {
	b := &Block{Name: "dangling"}
	if got := b.Succs(); got != nil {
		t.Fatalf("nil-term Succs = %v", got)
	}
}

func TestProgramStringIncludesAllBlocks(t *testing.T) {
	f := MustLowerSource(`
int f(int x) {
	if (x) { return 1; }
	return 0;
}`).Funcs[0]
	out := f.String()
	for _, b := range f.Blocks {
		if !strings.Contains(out, b.Name+":") {
			t.Fatalf("dump missing block %s:\n%s", b.Name, out)
		}
	}
}
