// Package ir defines the basic-block intermediate representation the deep
// analyses run on, and the lowering from the MiniC AST into it. Each
// function becomes a control-flow graph of blocks; temporaries are in
// single-assignment form (each Temp is defined exactly once), while named
// program variables may be assigned repeatedly.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Value is an operand: a constant, a named variable, or a temporary.
type Value interface {
	isValue()
	String() string
}

// Const is an integer constant operand.
type Const struct{ V int64 }

// Var is a named program variable (scalars only; arrays are accessed through
// ArrayLoad/ArrayStore).
type Var struct{ Name string }

// Temp is a compiler temporary, defined exactly once.
type Temp struct{ ID int }

func (Const) isValue() {}
func (Var) isValue()   {}
func (Temp) isValue()  {}

// String implementations.
func (c Const) String() string { return fmt.Sprintf("%d", c.V) }
func (v Var) String() string   { return v.Name }
func (t Temp) String() string  { return fmt.Sprintf("t%d", t.ID) }

// Dest is a value that can be written: a Var or a Temp.
type Dest interface {
	Value
	isDest()
}

func (Var) isDest()  {}
func (Temp) isDest() {}

// Instr is a non-terminator instruction.
type Instr interface {
	// Defs returns the destination, or nil for pure effects.
	Defs() Dest
	// Uses returns the operands read.
	Uses() []Value
	String() string
	// Line is the source line the instruction was lowered from.
	SrcLine() int
}

// Assign copies Src into Dst.
type Assign struct {
	Dst  Dest
	Src  Value
	Line int
}

// BinOp computes Dst = L Op R. Ops: + - * / % < <= > >= == != && ||.
type BinOp struct {
	Dst  Dest
	Op   string
	L, R Value
	Line int
}

// UnOp computes Dst = Op X. Ops: - !
type UnOp struct {
	Dst  Dest
	Op   string
	X    Value
	Line int
}

// Call invokes Name with Args; Dst may be nil for a call statement.
type Call struct {
	Dst  Dest // nil when the result is unused
	Name string
	Args []Value
	Line int
}

// ArrayLoad reads Dst = Array[Index].
type ArrayLoad struct {
	Dst   Dest
	Array string
	Index Value
	Line  int
}

// ArrayStore writes Array[Index] = Src.
type ArrayStore struct {
	Array string
	Index Value
	Src   Value
	Line  int
}

// Defs/Uses/String/SrcLine implementations.

func (a *Assign) Defs() Dest    { return a.Dst }
func (a *Assign) Uses() []Value { return []Value{a.Src} }
func (a *Assign) SrcLine() int  { return a.Line }
func (a *Assign) String() string {
	return fmt.Sprintf("%s = %s", a.Dst, a.Src)
}

func (b *BinOp) Defs() Dest    { return b.Dst }
func (b *BinOp) Uses() []Value { return []Value{b.L, b.R} }
func (b *BinOp) SrcLine() int  { return b.Line }
func (b *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s", b.Dst, b.L, b.Op, b.R)
}

func (u *UnOp) Defs() Dest    { return u.Dst }
func (u *UnOp) Uses() []Value { return []Value{u.X} }
func (u *UnOp) SrcLine() int  { return u.Line }
func (u *UnOp) String() string {
	return fmt.Sprintf("%s = %s%s", u.Dst, u.Op, u.X)
}

func (c *Call) Defs() Dest    { return c.Dst }
func (c *Call) Uses() []Value { return append([]Value(nil), c.Args...) }
func (c *Call) SrcLine() int  { return c.Line }
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	if c.Dst == nil {
		return fmt.Sprintf("call %s(%s)", c.Name, strings.Join(args, ", "))
	}
	return fmt.Sprintf("%s = call %s(%s)", c.Dst, c.Name, strings.Join(args, ", "))
}

func (l *ArrayLoad) Defs() Dest    { return l.Dst }
func (l *ArrayLoad) Uses() []Value { return []Value{l.Index} }
func (l *ArrayLoad) SrcLine() int  { return l.Line }
func (l *ArrayLoad) String() string {
	return fmt.Sprintf("%s = %s[%s]", l.Dst, l.Array, l.Index)
}

func (s *ArrayStore) Defs() Dest    { return nil }
func (s *ArrayStore) Uses() []Value { return []Value{s.Index, s.Src} }
func (s *ArrayStore) SrcLine() int  { return s.Line }
func (s *ArrayStore) String() string {
	return fmt.Sprintf("%s[%s] = %s", s.Array, s.Index, s.Src)
}

// Terminator ends a block.
type Terminator interface {
	Succs() []*Block
	Uses() []Value
	String() string
}

// Jump unconditionally transfers to Target.
type Jump struct{ Target *Block }

// Branch transfers to True when Cond != 0, else to False.
type Branch struct {
	Cond        Value
	True, False *Block
}

// Ret returns from the function; Value may be nil.
type Ret struct{ Value Value }

func (j *Jump) Succs() []*Block { return []*Block{j.Target} }
func (j *Jump) Uses() []Value   { return nil }
func (j *Jump) String() string  { return "jump " + j.Target.Name }

func (b *Branch) Succs() []*Block { return []*Block{b.True, b.False} }
func (b *Branch) Uses() []Value   { return []Value{b.Cond} }
func (b *Branch) String() string {
	return fmt.Sprintf("branch %s ? %s : %s", b.Cond, b.True.Name, b.False.Name)
}

func (r *Ret) Succs() []*Block { return nil }
func (r *Ret) Uses() []Value {
	if r.Value == nil {
		return nil
	}
	return []Value{r.Value}
}
func (r *Ret) String() string {
	if r.Value == nil {
		return "ret"
	}
	return "ret " + r.Value.String()
}

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Term   Terminator
	Preds  []*Block
}

// Succs returns the successor blocks (empty for return blocks).
func (b *Block) Succs() []*Block {
	if b.Term == nil {
		return nil
	}
	return b.Term.Succs()
}

// Func is one function's CFG.
type Func struct {
	Name   string
	Params []string
	Blocks []*Block // Blocks[0] is the entry
	NTemps int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// ParamIndex returns the position of name in the parameter list, or -1 when
// name is not a parameter. Interprocedural analyses use it to map a callee's
// formal back to the caller's actual.
func (f *Func) ParamIndex(name string) int {
	for i, p := range f.Params {
		if p == name {
			return i
		}
	}
	return -1
}

// Program is a lowered translation unit.
type Program struct {
	Funcs   []*Func
	Globals []string // names of global scalars and arrays
}

// FuncByName returns the function with the given name.
func (p *Program) FuncByName(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// computePreds fills in predecessor lists from the terminators.
func (f *Func) computePreds() {
	for _, b := range f.Blocks {
		b.Preds = nil
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// removeUnreachable drops blocks not reachable from the entry and renumbers
// the survivors, then recomputes predecessors.
func (f *Func) removeUnreachable() {
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
	}
	walk(f.Entry())
	var kept []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	for i, b := range kept {
		b.ID = i
	}
	f.Blocks = kept
	f.computePreds()
}

// String dumps the function as readable text for tests and debugging.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%s):\n", f.Name, strings.Join(f.Params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
		if b.Term != nil {
			fmt.Fprintf(&sb, "  %s\n", b.Term)
		}
	}
	return sb.String()
}

// Vars returns every named variable referenced in the function, sorted.
func (f *Func) Vars() []string {
	seen := map[string]bool{}
	add := func(v Value) {
		if vv, ok := v.(Var); ok {
			seen[vv.Name] = true
		}
	}
	for _, p := range f.Params {
		seen[p] = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != nil {
				add(d)
			}
			for _, u := range in.Uses() {
				add(u)
			}
		}
		if b.Term != nil {
			for _, u := range b.Term.Uses() {
				add(u)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
