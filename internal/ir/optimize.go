package ir

// Optimize performs the classic clean-up passes over a function:
// constant folding, copy/constant propagation within blocks, and
// constant-branch simplification with unreachable-block removal. The
// analyses run faster on optimized IR and the symbolic executor prunes
// statically-dead branches for free; semantics are preserved (property-
// tested against the interpreter).

// Optimize runs the passes to a fixpoint (bounded). Without program
// context every named variable is treated as call-clobbered; use
// OptimizeProgram to confine clobbering to the actual globals.
func Optimize(f *Func) {
	optimizeFunc(f, nil)
}

// OptimizeProgram optimizes every function, clobbering only true globals
// at call sites (MiniC has no pointers, so calls cannot touch locals).
func OptimizeProgram(p *Program) {
	globals := map[string]bool{}
	for _, g := range p.Globals {
		globals[g] = true
	}
	for _, f := range p.Funcs {
		optimizeFunc(f, globals)
	}
}

func optimizeFunc(f *Func, globals map[string]bool) {
	for i := 0; i < 8; i++ {
		changed := propagateAndFold(f, globals)
		changed = simplifyBranches(f) || changed
		if !changed {
			break
		}
	}
	f.removeUnreachable()
}

// propagateAndFold does block-local constant/copy propagation and folds
// constant expressions. Temps are single-assignment so their bindings are
// safe to propagate anywhere in the block after the definition; named
// variables are invalidated on reassignment, and call sites clobber the
// globals set (or every named variable when globals is nil).
func propagateAndFold(f *Func, globals map[string]bool) bool {
	changed := false
	for _, b := range f.Blocks {
		// binding maps a value name to its known replacement.
		binding := map[string]Value{}
		resolve := func(v Value) Value {
			for i := 0; i < 8; i++ { // bounded chase
				name, ok := valueName(v)
				if !ok {
					return v
				}
				next, ok := binding[name]
				if !ok {
					return v
				}
				v = next
			}
			return v
		}
		invalidate := func(name string) {
			delete(binding, name)
			// Any binding whose target is the overwritten variable dies too.
			for k, v := range binding {
				if n, ok := valueName(v); ok && n == name {
					delete(binding, k)
				}
			}
		}
		for idx, in := range b.Instrs {
			switch x := in.(type) {
			case *Assign:
				src := resolve(x.Src)
				if src != x.Src {
					x.Src = src
					changed = true
				}
				invalidate(x.Dst.String())
				binding[x.Dst.String()] = src
			case *BinOp:
				l, r := resolve(x.L), resolve(x.R)
				if l != x.L || r != x.R {
					x.L, x.R = l, r
					changed = true
				}
				invalidate(x.Dst.String())
				if lc, lok := l.(Const); lok {
					if rc, rok := r.(Const); rok {
						if v, ok := foldBin(x.Op, lc.V, rc.V); ok {
							b.Instrs[idx] = &Assign{Dst: x.Dst, Src: Const{V: v}, Line: x.Line}
							binding[x.Dst.String()] = Const{V: v}
							changed = true
							continue
						}
					}
				}
			case *UnOp:
				v := resolve(x.X)
				if v != x.X {
					x.X = v
					changed = true
				}
				invalidate(x.Dst.String())
				if c, ok := v.(Const); ok {
					var folded int64
					switch x.Op {
					case "-":
						folded = -c.V
					case "!":
						if c.V == 0 {
							folded = 1
						}
					default:
						continue
					}
					b.Instrs[idx] = &Assign{Dst: x.Dst, Src: Const{V: folded}, Line: x.Line}
					binding[x.Dst.String()] = Const{V: folded}
					changed = true
				}
			case *Call:
				for i := range x.Args {
					a := resolve(x.Args[i])
					if a != x.Args[i] {
						x.Args[i] = a
						changed = true
					}
				}
				if x.Dst != nil {
					invalidate(x.Dst.String())
				}
				// Calls may mutate globals: drop their bindings. Without
				// program context, conservatively clobber every named var.
				if globals != nil {
					for g := range globals {
						invalidate(g)
					}
				} else {
					for name := range f.collectNamedVars() {
						invalidate(name)
					}
				}
			case *ArrayLoad:
				iv := resolve(x.Index)
				if iv != x.Index {
					x.Index = iv
					changed = true
				}
				invalidate(x.Dst.String())
			case *ArrayStore:
				iv, sv := resolve(x.Index), resolve(x.Src)
				if iv != x.Index || sv != x.Src {
					x.Index, x.Src = iv, sv
					changed = true
				}
			}
		}
		// Terminator operand.
		if br, ok := b.Term.(*Branch); ok {
			if c := resolve(br.Cond); c != br.Cond {
				br.Cond = c
				changed = true
			}
		}
		if rt, ok := b.Term.(*Ret); ok && rt.Value != nil {
			if c := resolve(rt.Value); c != rt.Value {
				rt.Value = c
				changed = true
			}
		}
	}
	return changed
}

func (f *Func) collectNamedVars() map[string]bool {
	set := map[string]bool{}
	for _, v := range f.Vars() {
		set[v] = true
	}
	return set
}

func valueName(v Value) (string, bool) {
	switch x := v.(type) {
	case Var:
		return x.Name, true
	case Temp:
		return x.String(), true
	}
	return "", false
}

// foldBin evaluates a constant binary expression; division and modulo by
// zero do not fold (the runtime behaviour must be preserved).
func foldBin(op string, l, r int64) (int64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case "%":
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case "<":
		return b2i(l < r), true
	case "<=":
		return b2i(l <= r), true
	case ">":
		return b2i(l > r), true
	case ">=":
		return b2i(l >= r), true
	case "==":
		return b2i(l == r), true
	case "!=":
		return b2i(l != r), true
	case "&&":
		return b2i(l != 0 && r != 0), true
	case "||":
		return b2i(l != 0 || r != 0), true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// simplifyBranches rewrites Branch terminators with constant conditions
// into Jumps.
func simplifyBranches(f *Func) bool {
	changed := false
	for _, b := range f.Blocks {
		br, ok := b.Term.(*Branch)
		if !ok {
			continue
		}
		c, ok := br.Cond.(Const)
		if !ok {
			continue
		}
		if c.V != 0 {
			b.Term = &Jump{Target: br.True}
		} else {
			b.Term = &Jump{Target: br.False}
		}
		changed = true
	}
	if changed {
		f.computePreds()
	}
	return changed
}
