package ir

import (
	"fmt"

	"repro/internal/minic"
)

// Lower converts a checked MiniC program into IR. Shadowed variables are
// renamed so every IR variable name is unique within its function.
//
// Deviation from C semantics: '&&' and '||' are lowered eagerly (both sides
// evaluate) rather than with short-circuit control flow. Conditions in the
// analyzed subset are side-effect free, so the analyses are unaffected; the
// symbolic executor interprets the eager operators boolean-correctly.
func Lower(prog *minic.Program) (*Program, error) {
	out := &Program{}
	for _, g := range prog.Globals {
		out.Globals = append(out.Globals, g.Name)
	}
	for _, fd := range prog.Funcs {
		f, err := lowerFunc(fd, prog.Globals)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, f)
	}
	return out, nil
}

// MustLowerSource parses and lowers MiniC source, panicking on error; a
// convenience for tests and generators working with known-good source.
func MustLowerSource(src string) *Program {
	ast, err := minic.Parse(src)
	if err != nil {
		panic(err)
	}
	p, err := Lower(ast)
	if err != nil {
		panic(err)
	}
	return p
}

type lowerer struct {
	f      *Func
	cur    *Block
	nblock int
	// scopes maps source names to unique IR names.
	scopes  []map[string]string
	renames map[string]int
	// loop stack for break/continue targets.
	loops []loopCtx
}

type loopCtx struct {
	continueTo *Block
	breakTo    *Block
}

func lowerFunc(fd *minic.FuncDecl, globals []*minic.DeclStmt) (*Func, error) {
	lw := &lowerer{
		f:       &Func{Name: fd.Name},
		renames: map[string]int{},
	}
	// Global scope: globals map to themselves.
	gscope := map[string]string{}
	for _, g := range globals {
		gscope[g.Name] = g.Name
	}
	lw.scopes = append(lw.scopes, gscope)
	// Function scope with params.
	fscope := map[string]string{}
	for _, p := range fd.Params {
		fscope[p] = p
		lw.f.Params = append(lw.f.Params, p)
	}
	lw.scopes = append(lw.scopes, fscope)

	entry := lw.newBlock("entry")
	lw.cur = entry
	if err := lw.lowerBlock(fd.Body); err != nil {
		return nil, err
	}
	// Fall off the end: implicit "ret".
	if lw.cur.Term == nil {
		lw.cur.Term = &Ret{}
	}
	lw.f.removeUnreachable()
	return lw.f, nil
}

func (lw *lowerer) newBlock(kind string) *Block {
	b := &Block{ID: lw.nblock, Name: fmt.Sprintf("%s%d", kind, lw.nblock)}
	lw.nblock++
	lw.f.Blocks = append(lw.f.Blocks, b)
	return b
}

func (lw *lowerer) newTemp() Temp {
	t := Temp{ID: lw.f.NTemps}
	lw.f.NTemps++
	return t
}

func (lw *lowerer) emit(in Instr) {
	if lw.cur.Term != nil {
		// Unreachable code after return/break: drop it.
		return
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

func (lw *lowerer) terminate(t Terminator) {
	if lw.cur.Term == nil {
		lw.cur.Term = t
	}
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]string{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

// declare introduces name in the innermost scope, renaming shadows.
func (lw *lowerer) declare(name string) string {
	unique := name
	if n, seen := lw.renames[name]; seen {
		unique = fmt.Sprintf("%s.%d", name, n)
	}
	lw.renames[name]++
	lw.scopes[len(lw.scopes)-1][name] = unique
	return unique
}

// resolve maps a source name to its IR name.
func (lw *lowerer) resolve(name string) string {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if u, ok := lw.scopes[i][name]; ok {
			return u
		}
	}
	// The checker guarantees declarations, so this is unreachable for valid
	// programs; map to itself for robustness.
	return name
}

func (lw *lowerer) lowerBlock(b *minic.Block) error {
	lw.pushScope()
	defer lw.popScope()
	for _, st := range b.Stmts {
		if err := lw.lowerStmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(st minic.Stmt) error {
	switch s := st.(type) {
	case *minic.Block:
		return lw.lowerBlock(s)

	case *minic.DeclStmt:
		name := lw.declare(s.Name)
		if s.Size > 0 {
			// Arrays need no explicit allocation in the IR; stores/loads
			// reference them by name.
			return nil
		}
		var init Value = Const{V: 0}
		if s.Init != nil {
			v, err := lw.lowerExpr(s.Init)
			if err != nil {
				return err
			}
			init = v
		}
		lw.emit(&Assign{Dst: Var{Name: name}, Src: init, Line: s.Line})
		return nil

	case *minic.AssignStmt:
		val, err := lw.lowerExpr(s.Value)
		if err != nil {
			return err
		}
		switch target := s.Target.(type) {
		case *minic.VarRef:
			lw.emit(&Assign{Dst: Var{Name: lw.resolve(target.Name)}, Src: val, Line: s.Line})
		case *minic.IndexExpr:
			idx, err := lw.lowerExpr(target.Index)
			if err != nil {
				return err
			}
			lw.emit(&ArrayStore{Array: lw.resolve(target.Name), Index: idx, Src: val, Line: s.Line})
		default:
			return fmt.Errorf("ir: bad assignment target %T", s.Target)
		}
		return nil

	case *minic.IfStmt:
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		thenB := lw.newBlock("then")
		joinB := lw.newBlock("join")
		elseB := joinB
		if s.Else != nil {
			elseB = lw.newBlock("else")
		}
		lw.terminate(&Branch{Cond: cond, True: thenB, False: elseB})
		lw.cur = thenB
		if err := lw.lowerBlock(s.Then); err != nil {
			return err
		}
		lw.terminate(&Jump{Target: joinB})
		if s.Else != nil {
			lw.cur = elseB
			if err := lw.lowerBlock(s.Else); err != nil {
				return err
			}
			lw.terminate(&Jump{Target: joinB})
		}
		lw.cur = joinB
		return nil

	case *minic.WhileStmt:
		condB := lw.newBlock("loopcond")
		bodyB := lw.newBlock("loopbody")
		exitB := lw.newBlock("loopexit")
		lw.terminate(&Jump{Target: condB})
		lw.cur = condB
		cond, err := lw.lowerExpr(s.Cond)
		if err != nil {
			return err
		}
		lw.terminate(&Branch{Cond: cond, True: bodyB, False: exitB})
		lw.loops = append(lw.loops, loopCtx{continueTo: condB, breakTo: exitB})
		lw.cur = bodyB
		if err := lw.lowerBlock(s.Body); err != nil {
			return err
		}
		lw.terminate(&Jump{Target: condB})
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.cur = exitB
		return nil

	case *minic.ForStmt:
		lw.pushScope() // for-init scope
		defer lw.popScope()
		if s.Init != nil {
			if err := lw.lowerStmt(s.Init); err != nil {
				return err
			}
		}
		condB := lw.newBlock("forcond")
		bodyB := lw.newBlock("forbody")
		postB := lw.newBlock("forpost")
		exitB := lw.newBlock("forexit")
		lw.terminate(&Jump{Target: condB})
		lw.cur = condB
		if s.Cond != nil {
			cond, err := lw.lowerExpr(s.Cond)
			if err != nil {
				return err
			}
			lw.terminate(&Branch{Cond: cond, True: bodyB, False: exitB})
		} else {
			lw.terminate(&Jump{Target: bodyB})
		}
		lw.loops = append(lw.loops, loopCtx{continueTo: postB, breakTo: exitB})
		lw.cur = bodyB
		if err := lw.lowerBlock(s.Body); err != nil {
			return err
		}
		lw.terminate(&Jump{Target: postB})
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.cur = postB
		if s.Post != nil {
			if err := lw.lowerStmt(s.Post); err != nil {
				return err
			}
		}
		lw.terminate(&Jump{Target: condB})
		lw.cur = exitB
		return nil

	case *minic.ReturnStmt:
		var v Value
		if s.Value != nil {
			val, err := lw.lowerExpr(s.Value)
			if err != nil {
				return err
			}
			v = val
		}
		lw.terminate(&Ret{Value: v})
		// Subsequent statements in this block are dead; give them a block so
		// lowering can continue, then prune it.
		lw.cur = lw.newBlock("dead")
		return nil

	case *minic.ExprStmt:
		call, ok := s.X.(*minic.CallExpr)
		if !ok {
			return fmt.Errorf("ir: expression statement is not a call")
		}
		args, err := lw.lowerArgs(call.Args)
		if err != nil {
			return err
		}
		lw.emit(&Call{Dst: nil, Name: call.Name, Args: args, Line: s.Line})
		return nil

	case *minic.BreakStmt:
		if len(lw.loops) == 0 {
			return fmt.Errorf("ir: break outside loop")
		}
		lw.terminate(&Jump{Target: lw.loops[len(lw.loops)-1].breakTo})
		lw.cur = lw.newBlock("dead")
		return nil

	case *minic.ContinueStmt:
		if len(lw.loops) == 0 {
			return fmt.Errorf("ir: continue outside loop")
		}
		lw.terminate(&Jump{Target: lw.loops[len(lw.loops)-1].continueTo})
		lw.cur = lw.newBlock("dead")
		return nil

	default:
		return fmt.Errorf("ir: unknown statement %T", st)
	}
}

func (lw *lowerer) lowerArgs(args []minic.Expr) ([]Value, error) {
	out := make([]Value, 0, len(args))
	for _, a := range args {
		v, err := lw.lowerExpr(a)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (lw *lowerer) lowerExpr(e minic.Expr) (Value, error) {
	switch x := e.(type) {
	case *minic.NumLit:
		return Const{V: x.Value}, nil
	case *minic.VarRef:
		return Var{Name: lw.resolve(x.Name)}, nil
	case *minic.IndexExpr:
		idx, err := lw.lowerExpr(x.Index)
		if err != nil {
			return nil, err
		}
		t := lw.newTemp()
		lw.emit(&ArrayLoad{Dst: t, Array: lw.resolve(x.Name), Index: idx, Line: x.Line})
		return t, nil
	case *minic.BinaryExpr:
		l, err := lw.lowerExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := lw.lowerExpr(x.R)
		if err != nil {
			return nil, err
		}
		t := lw.newTemp()
		lw.emit(&BinOp{Dst: t, Op: x.Op, L: l, R: r, Line: x.Line})
		return t, nil
	case *minic.UnaryExpr:
		v, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, err
		}
		t := lw.newTemp()
		lw.emit(&UnOp{Dst: t, Op: x.Op, X: v, Line: x.Line})
		return t, nil
	case *minic.CallExpr:
		args, err := lw.lowerArgs(x.Args)
		if err != nil {
			return nil, err
		}
		t := lw.newTemp()
		lw.emit(&Call{Dst: t, Name: x.Name, Args: args, Line: x.Line})
		return t, nil
	default:
		return nil, fmt.Errorf("ir: unknown expression %T", e)
	}
}
