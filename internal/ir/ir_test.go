package ir

import (
	"strings"
	"testing"
)

func lowerOne(t *testing.T, src string) *Func {
	t.Helper()
	p := MustLowerSource(src)
	if len(p.Funcs) == 0 {
		t.Fatal("no functions lowered")
	}
	return p.Funcs[0]
}

func TestLowerStraightLine(t *testing.T) {
	f := lowerOne(t, "int f(int a) { int b = a + 1; return b; }")
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
	entry := f.Entry()
	if len(entry.Instrs) != 2 { // t0 = a+1; b = t0
		t.Fatalf("instrs = %d:\n%s", len(entry.Instrs), f)
	}
	if _, ok := entry.Term.(*Ret); !ok {
		t.Fatalf("terminator = %T", entry.Term)
	}
}

func TestLowerImplicitReturn(t *testing.T) {
	f := lowerOne(t, "int f(void) { int x = 1; }")
	if _, ok := f.Entry().Term.(*Ret); !ok {
		t.Fatalf("missing implicit return:\n%s", f)
	}
}

func TestLowerIfElse(t *testing.T) {
	f := lowerOne(t, `
int f(int x) {
	int y = 0;
	if (x > 0) { y = 1; } else { y = 2; }
	return y;
}`)
	// entry, then, join, else = 4 blocks
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
	br, ok := f.Entry().Term.(*Branch)
	if !ok {
		t.Fatalf("entry terminator = %T", f.Entry().Term)
	}
	if br.True == br.False {
		t.Fatal("if/else share a target")
	}
	// Both then and else must jump to the join block.
	thenT := br.True.Term.(*Jump).Target
	elseT := br.False.Term.(*Jump).Target
	if thenT != elseT {
		t.Fatalf("then/else do not rejoin:\n%s", f)
	}
}

func TestLowerIfWithoutElse(t *testing.T) {
	f := lowerOne(t, "int f(int x) { if (x) { x = 1; } return x; }")
	br := f.Entry().Term.(*Branch)
	// False edge goes straight to the join block.
	join := br.False
	if br.True.Term.(*Jump).Target != join {
		t.Fatalf("then does not rejoin:\n%s", f)
	}
}

func TestLowerWhileLoop(t *testing.T) {
	f := lowerOne(t, `
int f(int n) {
	int s = 0;
	while (n > 0) {
		s = s + n;
		n = n - 1;
	}
	return s;
}`)
	// entry, loopcond, loopbody, loopexit
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
	var condBlock *Block
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "loopcond") {
			condBlock = b
		}
	}
	if condBlock == nil {
		t.Fatalf("no cond block:\n%s", f)
	}
	// The cond block has two preds: entry and body (back edge).
	if len(condBlock.Preds) != 2 {
		t.Fatalf("cond preds = %d:\n%s", len(condBlock.Preds), f)
	}
}

func TestLowerForLoop(t *testing.T) {
	f := lowerOne(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i; }
	return s;
}`)
	names := map[string]bool{}
	for _, b := range f.Blocks {
		names[strings.TrimRight(b.Name, "0123456789")] = true
	}
	for _, want := range []string{"entry", "forcond", "forbody", "forpost", "forexit"} {
		if !names[want] {
			t.Fatalf("missing %s block:\n%s", want, f)
		}
	}
}

func TestLowerBreakContinue(t *testing.T) {
	f := lowerOne(t, `
int f(int n) {
	int s = 0;
	while (1) {
		if (s > n) { break; }
		s++;
		if (s % 2) { continue; }
		s++;
	}
	return s;
}`)
	// Verify that some block jumps to loopexit (the break) and some block
	// jumps to loopcond from inside the body (the continue).
	var exitJumps, condJumps int
	for _, b := range f.Blocks {
		if j, ok := b.Term.(*Jump); ok {
			if strings.HasPrefix(j.Target.Name, "loopexit") {
				exitJumps++
			}
			if strings.HasPrefix(j.Target.Name, "loopcond") {
				condJumps++
			}
		}
	}
	if exitJumps == 0 {
		t.Fatalf("no break edge:\n%s", f)
	}
	if condJumps < 2 { // back edge + continue
		t.Fatalf("continue edge missing (cond jumps = %d):\n%s", condJumps, f)
	}
}

func TestLowerDeadCodeRemoved(t *testing.T) {
	f := lowerOne(t, "int f(void) { return 1; int x = 2; x = 3; }")
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, "dead") {
			t.Fatalf("dead block survived:\n%s", f)
		}
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d:\n%s", len(f.Blocks), f)
	}
}

func TestLowerShadowRenaming(t *testing.T) {
	f := lowerOne(t, `
int f(int x) {
	int y = 1;
	if (x) {
		int y = 2;
		x = y;
	}
	return y;
}`)
	vars := f.Vars()
	// Two distinct y variables must exist.
	count := 0
	for _, v := range vars {
		if v == "y" || strings.HasPrefix(v, "y.") {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("shadowed variables = %d (%v):\n%s", count, vars, f)
	}
}

func TestLowerArrays(t *testing.T) {
	f := lowerOne(t, `
int f(int i) {
	int a[8];
	a[i] = 42;
	return a[i + 1];
}`)
	var stores, loads int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ArrayStore:
				stores++
			case *ArrayLoad:
				loads++
			}
		}
	}
	if stores != 1 || loads != 1 {
		t.Fatalf("stores=%d loads=%d:\n%s", stores, loads, f)
	}
}

func TestLowerCalls(t *testing.T) {
	f := lowerOne(t, `
int f(int x) {
	int r = g(x, 2);
	log_it(r);
	return r;
}`)
	var valCalls, voidCalls int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok {
				if c.Dst == nil {
					voidCalls++
				} else {
					valCalls++
				}
			}
		}
	}
	if valCalls != 1 || voidCalls != 1 {
		t.Fatalf("calls = %d/%d:\n%s", valCalls, voidCalls, f)
	}
}

func TestLowerGlobals(t *testing.T) {
	p := MustLowerSource("int g = 5;\nint table[4];\nint main(void) { return g; }")
	if len(p.Globals) != 2 {
		t.Fatalf("globals = %v", p.Globals)
	}
	f, ok := p.FuncByName("main")
	if !ok {
		t.Fatal("main missing")
	}
	found := false
	for _, v := range f.Vars() {
		if v == "g" {
			found = true
		}
	}
	if !found {
		t.Fatalf("global not referenced: %v", f.Vars())
	}
}

func TestTempsSingleAssignment(t *testing.T) {
	f := lowerOne(t, `
int f(int a, int b) {
	int c = a * b + a / b - a % b;
	if (a < b && b < 10) { c = c + 1; }
	return c;
}`)
	defs := map[int]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != nil {
				if tmp, ok := d.(Temp); ok {
					defs[tmp.ID]++
				}
			}
		}
	}
	for id, n := range defs {
		if n != 1 {
			t.Fatalf("temp t%d defined %d times:\n%s", id, n, f)
		}
	}
}

func TestPredsConsistent(t *testing.T) {
	f := lowerOne(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2) { s += i; } else { s -= i; }
	}
	return s;
}`)
	// Every successor edge must have a matching predecessor entry.
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %s->%s missing pred:\n%s", b.Name, s.Name, f)
			}
		}
	}
	// And block IDs are dense.
	for i, b := range f.Blocks {
		if b.ID != i {
			t.Fatalf("block %s has ID %d at index %d", b.Name, b.ID, i)
		}
	}
}

func TestFuncString(t *testing.T) {
	f := lowerOne(t, "int f(int a) { return a; }")
	s := f.String()
	if !strings.Contains(s, "func f(a):") || !strings.Contains(s, "ret a") {
		t.Fatalf("String() = %s", s)
	}
}

func TestValueStrings(t *testing.T) {
	if (Const{V: 7}).String() != "7" {
		t.Fatal("const string")
	}
	if (Var{Name: "x"}).String() != "x" {
		t.Fatal("var string")
	}
	if (Temp{ID: 3}).String() != "t3" {
		t.Fatal("temp string")
	}
}

func TestFuncByNameMissing(t *testing.T) {
	p := MustLowerSource("int f(void) { return 0; }")
	if _, ok := p.FuncByName("nope"); ok {
		t.Fatal("found nonexistent function")
	}
}
