// Package lang is the language registry: per-language lexical syntax
// (comment and string delimiters, keywords, decision keywords for cyclomatic
// complexity) and file-extension mapping. The corpus in the paper categorizes
// applications by primary language (C, C++, Python, Java), and the static
// analysis stack is language-parameterized through this package.
package lang

import (
	"path/filepath"
	"strings"
)

// Language identifies a supported programming language.
type Language int

// Supported languages. MiniC is the analyzable C subset used by the parser,
// IR, and symbolic-execution substrates; it shares C's lexical syntax.
const (
	Unknown Language = iota
	C
	CPP
	Java
	Python
	MiniC
)

// String returns the display name used in figures ("Primarily C", etc.).
func (l Language) String() string {
	switch l {
	case C:
		return "C"
	case CPP:
		return "C++"
	case Java:
		return "Java"
	case Python:
		return "Python"
	case MiniC:
		return "MiniC"
	default:
		return "Unknown"
	}
}

// ParseLanguage maps a display name back to a Language.
func ParseLanguage(s string) Language {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "c":
		return C
	case "c++", "cpp", "cxx":
		return CPP
	case "java":
		return Java
	case "python", "py":
		return Python
	case "minic":
		return MiniC
	default:
		return Unknown
	}
}

// Managed reports whether the language has managed memory (no raw pointer
// arithmetic), which structurally precludes several CWE families.
func (l Language) Managed() bool {
	return l == Java || l == Python
}

// Syntax captures the lexical rules an analyzer needs.
type Syntax struct {
	LineComment    []string // comment-to-end-of-line introducers
	BlockStart     string   // block comment opener ("" if none)
	BlockEnd       string   // block comment closer
	StringQuotes   []byte   // characters that open/close string literals
	RawTripleQuote bool     // Python-style ''' / """ strings
	Preprocessor   byte     // line prefix treated as code (C's '#'), 0 if none
	IndentBlocks   bool     // block structure by indentation (Python)
	Keywords       map[string]bool
	// DecisionKeywords are the tokens that add one to McCabe cyclomatic
	// complexity when they begin a branching construct.
	DecisionKeywords map[string]bool
	// FunctionKeywords introduce a function definition (Python's "def");
	// empty for brace languages where functions are detected structurally.
	FunctionKeywords map[string]bool
}

func set(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

var cKeywords = set(
	"auto", "break", "case", "char", "const", "continue", "default", "do",
	"double", "else", "enum", "extern", "float", "for", "goto", "if", "int",
	"long", "register", "return", "short", "signed", "sizeof", "static",
	"struct", "switch", "typedef", "union", "unsigned", "void", "volatile",
	"while",
)

var cppExtra = set(
	"class", "namespace", "template", "typename", "public", "private",
	"protected", "virtual", "new", "delete", "try", "catch", "throw",
	"operator", "this", "using", "bool", "true", "false", "nullptr",
)

var javaKeywords = set(
	"abstract", "assert", "boolean", "break", "byte", "case", "catch", "char",
	"class", "const", "continue", "default", "do", "double", "else", "enum",
	"extends", "final", "finally", "float", "for", "goto", "if", "implements",
	"import", "instanceof", "int", "interface", "long", "native", "new",
	"package", "private", "protected", "public", "return", "short", "static",
	"strictfp", "super", "switch", "synchronized", "this", "throw", "throws",
	"transient", "try", "void", "volatile", "while",
)

var pythonKeywords = set(
	"False", "None", "True", "and", "as", "assert", "async", "await", "break",
	"class", "continue", "def", "del", "elif", "else", "except", "finally",
	"for", "from", "global", "if", "import", "in", "is", "lambda", "nonlocal",
	"not", "or", "pass", "raise", "return", "try", "while", "with", "yield",
)

func merge(ms ...map[string]bool) map[string]bool {
	out := map[string]bool{}
	for _, m := range ms {
		for k := range m {
			out[k] = true
		}
	}
	return out
}

var syntaxes = map[Language]Syntax{
	C: {
		LineComment:      []string{"//"},
		BlockStart:       "/*",
		BlockEnd:         "*/",
		StringQuotes:     []byte{'"', '\''},
		Preprocessor:     '#',
		Keywords:         cKeywords,
		DecisionKeywords: set("if", "for", "while", "case", "do"),
	},
	CPP: {
		LineComment:      []string{"//"},
		BlockStart:       "/*",
		BlockEnd:         "*/",
		StringQuotes:     []byte{'"', '\''},
		Preprocessor:     '#',
		Keywords:         merge(cKeywords, cppExtra),
		DecisionKeywords: set("if", "for", "while", "case", "do", "catch"),
	},
	Java: {
		LineComment:      []string{"//"},
		BlockStart:       "/*",
		BlockEnd:         "*/",
		StringQuotes:     []byte{'"', '\''},
		Keywords:         javaKeywords,
		DecisionKeywords: set("if", "for", "while", "case", "do", "catch"),
	},
	Python: {
		LineComment:      []string{"#"},
		StringQuotes:     []byte{'"', '\''},
		RawTripleQuote:   true,
		IndentBlocks:     true,
		Keywords:         pythonKeywords,
		DecisionKeywords: set("if", "for", "while", "elif", "except", "and", "or"),
		FunctionKeywords: set("def"),
	},
	MiniC: {
		LineComment:      []string{"//"},
		BlockStart:       "/*",
		BlockEnd:         "*/",
		StringQuotes:     []byte{'"'},
		Keywords:         cKeywords,
		DecisionKeywords: set("if", "for", "while", "case", "do"),
	},
}

// SyntaxOf returns the lexical rules for l. Unknown languages fall back to C
// syntax, which is a safe default for line classification.
func SyntaxOf(l Language) Syntax {
	if s, ok := syntaxes[l]; ok {
		return s
	}
	return syntaxes[C]
}

var extensions = map[string]Language{
	".c":    C,
	".h":    C,
	".cc":   CPP,
	".cpp":  CPP,
	".cxx":  CPP,
	".hpp":  CPP,
	".hh":   CPP,
	".java": Java,
	".py":   Python,
	".mc":   MiniC,
}

// FromPath infers the language of a file from its extension.
func FromPath(path string) Language {
	ext := strings.ToLower(filepath.Ext(path))
	if l, ok := extensions[ext]; ok {
		return l
	}
	return Unknown
}

// Extensions returns the canonical file extension for a language.
func (l Language) Extension() string {
	switch l {
	case C:
		return ".c"
	case CPP:
		return ".cpp"
	case Java:
		return ".java"
	case Python:
		return ".py"
	case MiniC:
		return ".mc"
	default:
		return ".txt"
	}
}

// All returns the analyzable languages in display order.
func All() []Language {
	return []Language{C, CPP, Python, Java, MiniC}
}
