package lang

import "testing"

func TestStringRoundTrip(t *testing.T) {
	for _, l := range All() {
		if got := ParseLanguage(l.String()); got != l {
			t.Errorf("ParseLanguage(%q) = %v, want %v", l.String(), got, l)
		}
	}
	if ParseLanguage("cobol") != Unknown {
		t.Error("unknown language parsed")
	}
}

func TestParseLanguageAliases(t *testing.T) {
	cases := map[string]Language{
		"c": C, "C": C, " c ": C,
		"cpp": CPP, "c++": CPP, "CXX": CPP,
		"py": Python, "Python": Python,
		"java": Java,
	}
	for in, want := range cases {
		if got := ParseLanguage(in); got != want {
			t.Errorf("ParseLanguage(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestManaged(t *testing.T) {
	if C.Managed() || CPP.Managed() || MiniC.Managed() {
		t.Error("C-family should not be managed")
	}
	if !Java.Managed() || !Python.Managed() {
		t.Error("Java/Python should be managed")
	}
}

func TestFromPath(t *testing.T) {
	cases := map[string]Language{
		"foo/bar.c":    C,
		"foo/bar.h":    C,
		"x.CPP":        CPP,
		"A.java":       Java,
		"pkg/mod.py":   Python,
		"prog.mc":      MiniC,
		"README.md":    Unknown,
		"no_extension": Unknown,
	}
	for path, want := range cases {
		if got := FromPath(path); got != want {
			t.Errorf("FromPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestExtensionRoundTrip(t *testing.T) {
	for _, l := range All() {
		if got := FromPath("x" + l.Extension()); got != l {
			t.Errorf("FromPath of %v extension = %v", l, got)
		}
	}
}

func TestSyntaxOf(t *testing.T) {
	c := SyntaxOf(C)
	if c.BlockStart != "/*" || c.BlockEnd != "*/" {
		t.Error("C block comments wrong")
	}
	if c.Preprocessor != '#' {
		t.Error("C preprocessor prefix missing")
	}
	py := SyntaxOf(Python)
	if !py.IndentBlocks || !py.RawTripleQuote {
		t.Error("Python syntax flags wrong")
	}
	if py.BlockStart != "" {
		t.Error("Python has no block comments")
	}
	if !py.FunctionKeywords["def"] {
		t.Error("Python def missing")
	}
	// Unknown falls back to C.
	if SyntaxOf(Unknown).BlockStart != "/*" {
		t.Error("Unknown fallback not C")
	}
}

func TestKeywordSets(t *testing.T) {
	if !SyntaxOf(C).Keywords["while"] {
		t.Error("C missing while")
	}
	if SyntaxOf(C).Keywords["class"] {
		t.Error("C should not have class")
	}
	if !SyntaxOf(CPP).Keywords["class"] || !SyntaxOf(CPP).Keywords["while"] {
		t.Error("C++ keyword merge broken")
	}
	if !SyntaxOf(Java).Keywords["synchronized"] {
		t.Error("Java missing synchronized")
	}
}

func TestDecisionKeywords(t *testing.T) {
	for _, l := range []Language{C, CPP, Java, Python, MiniC} {
		dk := SyntaxOf(l).DecisionKeywords
		if !dk["if"] || !dk["while"] {
			t.Errorf("%v missing basic decision keywords", l)
		}
	}
	if !SyntaxOf(Python).DecisionKeywords["elif"] {
		t.Error("Python elif missing")
	}
	if !SyntaxOf(CPP).DecisionKeywords["catch"] {
		t.Error("C++ catch missing")
	}
}
