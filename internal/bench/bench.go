// Package bench is the fixed-scale performance harness behind `secmetric
// bench`. It runs the workloads the serving path is built from — tokenize,
// base-metric extraction, lint, full analysis, incremental one-file
// applies against a warm session, forest training, batched forest
// inference, model scoring, model loading, and the embedded storage
// engine (committed puts, snapshot scans, index-planned history queries)
// — at pinned scales,
// measures ns/op, allocs/op, and bytes/op from runtime.MemStats deltas, and
// emits a JSON report (BENCH_<rev>.json) that verify.sh compares against
// the committed baseline.
//
// Scales never change with Quick; only the per-workload measurement budget
// does, so ns/op stays comparable between a committed full run and a CI
// smoke run. Every randomized input is drawn from a fixed seed and every
// concurrent knob is pinned to one worker, so run-to-run variance is
// scheduling noise only.
package bench

import (
	"fmt"
	"runtime"
	"time"
)

// Workload scales, pinned forever: changing any of these invalidates every
// committed BENCH_*.json. Bump benchFormatVersion instead of comparing
// across a scale change.
const (
	benchFormatVersion = 1

	// TreeFiles is the number of vulnapp replicas in the extraction tree.
	TreeFiles = 16
	// FitRows / FitCols size the forest-training dataset.
	FitRows = 400
	FitCols = 44
	// FitTrees / FitDepth configure the benchmark forest.
	FitTrees = 20
	FitDepth = 10
	// ServeTrees / ServeDepth configure the serving ensemble that
	// forest_batch predicts with — a deliberately production-sized forest
	// (standard random-forest defaults), round-tripped through its
	// serialized form so the workload measures inference with a loaded
	// model, the state the scoring daemon actually holds.
	ServeTrees = 100
	ServeDepth = 12
	// BatchRows is the number of rows one forest_batch op predicts.
	BatchRows = 4096
	// ModelTrees is the per-hypothesis tree count of the persisted
	// benchmark model (model_load_* workloads).
	ModelTrees = 20
	// StoreKeys / StoreValueBytes size the KV store the store_put and
	// store_scan workloads run against; StoreRuns / StoreRepos size the
	// findings history behind query_indexed.
	StoreKeys       = 2000
	StoreValueBytes = 256
	StoreRuns       = 256
	StoreRepos      = 4
	// CoalesceFanout is the burst width of the score_coalesced workload:
	// how many identical concurrent scores one op fans through the
	// singleflight group (the request coalescer's dedup primitive).
	CoalesceFanout = 8

	benchSeed = 0xbe9c4
)

// Result is one workload's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// PhaseTotal mirrors trace.PhaseTotal for the report without importing the
// trace package into every consumer of a decoded report.
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// Report is the serialized form of one bench run.
type Report struct {
	Version   int            `json:"version"`
	Rev       string         `json:"rev"`
	GoVersion string         `json:"go"`
	Quick     bool           `json:"quick"`
	Scales    map[string]int `json:"scales"`
	Results   []Result       `json:"results"`
	// ExtractPhases is the per-phase busy-time breakdown of one traced
	// full-analysis run over the benchmark tree (from the trace layer), so
	// the report shows where extraction time goes, not just how much.
	ExtractPhases []PhaseTotal `json:"extract_phases,omitempty"`
}

// Options tunes a run.
type Options struct {
	// Quick shortens the per-workload measurement budget (for CI smokes);
	// workload scales are unchanged.
	Quick bool
	// Rev labels the report (the <rev> of BENCH_<rev>.json).
	Rev string
	// Dir is the example tree the extraction workloads replicate;
	// defaults to examples/vulnapp.
	Dir string
	// Only restricts the run to the named workloads (empty = all). Used to
	// re-measure suspected regressions without repeating the whole suite.
	Only []string
	// Logf, when non-nil, receives one progress line per workload.
	Logf func(format string, args ...any)
}

func (o *Options) budget() time.Duration {
	if o.Quick {
		return 150 * time.Millisecond
	}
	return time.Second
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// measure times fn until the budget elapses (at least 3 iterations), after
// one warm-up call, and reads allocation deltas around the timed loop. The
// warm-up primes caches and pools so steady-state allocs/op is measured,
// not first-call setup.
func measure(name string, budget time.Duration, fn func()) Result {
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for {
		fn()
		iters++
		if iters >= 3 && time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return Result{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
}

// Run executes every workload and assembles the report.
func Run(opts Options) (*Report, error) {
	if opts.Dir == "" {
		opts.Dir = "examples/vulnapp"
	}
	if opts.Rev == "" {
		opts.Rev = "dev"
	}
	rep := &Report{
		Version:   benchFormatVersion,
		Rev:       opts.Rev,
		GoVersion: runtime.Version(),
		Quick:     opts.Quick,
		Scales: map[string]int{
			"tree_files":      TreeFiles,
			"fit_rows":        FitRows,
			"fit_cols":        FitCols,
			"fit_trees":       FitTrees,
			"fit_depth":       FitDepth,
			"batch_rows":      BatchRows,
			"model_trees":     ModelTrees,
			"store_keys":      StoreKeys,
			"store_runs":      StoreRuns,
			"coalesce_fanout": CoalesceFanout,
		},
	}
	ws, err := setupWorkloads(opts.Dir)
	if err != nil {
		return nil, err
	}
	defer ws.close()
	only := map[string]bool{}
	for _, name := range opts.Only {
		only[name] = true
	}
	budget := opts.budget()
	for _, w := range ws.list() {
		if len(only) > 0 && !only[w.name] {
			continue
		}
		opts.logf("bench: %s...", w.name)
		r := measure(w.name, budget, w.fn)
		opts.logf(" %s ns/op=%.0f allocs/op=%.1f\n", w.name, r.NsPerOp, r.AllocsPerOp)
		rep.Results = append(rep.Results, r)
	}
	rep.ExtractPhases = ws.phaseTotals()
	return rep, nil
}

// Compare checks cur against base: any shared workload whose ns/op grew by
// more than maxRegress (0.25 = 25%) is reported. The returned slice is
// empty when cur is within bounds everywhere.
func Compare(cur, base *Report, maxRegress float64) []string {
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	var regressions []string
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		if ratio > 1+maxRegress {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx, limit %.2fx)",
					r.Name, r.NsPerOp, b.NsPerOp, ratio, 1+maxRegress))
		}
	}
	return regressions
}

// Regressed returns the names of cur's workloads whose ns/op exceeds the
// baseline by more than maxRegress. Compare formats the same set for
// humans; this form feeds a targeted re-measurement.
func Regressed(cur, base *Report, maxRegress float64) []string {
	baseBy := map[string]Result{}
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	var names []string
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp/b.NsPerOp > 1+maxRegress {
			names = append(names, r.Name)
		}
	}
	return names
}

// Replace overwrites rep's results for workloads re-measured in next,
// leaving the rest untouched.
func Replace(rep *Report, next *Report) {
	for _, nr := range next.Results {
		for i, r := range rep.Results {
			if r.Name == nr.Name {
				rep.Results[i] = nr
			}
		}
	}
}
