package bench

import (
	"reflect"
	"testing"
)

func report(pairs ...any) *Report {
	rep := &Report{}
	for i := 0; i < len(pairs); i += 2 {
		rep.Results = append(rep.Results, Result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return rep
}

func TestCompareAndRegressed(t *testing.T) {
	base := report("a", 100.0, "b", 200.0, "c", 300.0)
	cur := report("a", 110.0, "b", 260.0, "d", 999.0) // b +30%, d not in base

	regs := Compare(cur, base, 0.25)
	if len(regs) != 1 {
		t.Fatalf("Compare: got %d regressions, want 1: %v", len(regs), regs)
	}
	names := Regressed(cur, base, 0.25)
	if !reflect.DeepEqual(names, []string{"b"}) {
		t.Fatalf("Regressed: got %v, want [b]", names)
	}
	if names := Regressed(cur, base, 0.50); names != nil {
		t.Fatalf("Regressed at 50%%: got %v, want none", names)
	}
}

func TestReplace(t *testing.T) {
	rep := report("a", 100.0, "b", 260.0, "c", 300.0)
	Replace(rep, report("b", 205.0))
	want := report("a", 100.0, "b", 205.0, "c", 300.0)
	if !reflect.DeepEqual(rep.Results, want.Results) {
		t.Fatalf("Replace: got %+v, want %+v", rep.Results, want.Results)
	}
}

// TestRunOnly measures a single fast workload end-to-end, proving the Only
// filter restricts the suite (the re-measurement path in `secmetric bench`)
// without paying for the full run.
func TestRunOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real measurement")
	}
	rep, err := Run(Options{
		Quick: true,
		Rev:   "test",
		Dir:   "../../examples/vulnapp",
		Only:  []string{"tokenize_file"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "tokenize_file" {
		t.Fatalf("Only filter: got %+v, want exactly tokenize_file", rep.Results)
	}
	if rep.Results[0].NsPerOp <= 0 || rep.Results[0].Iters < 3 {
		t.Fatalf("tokenize_file measurement implausible: %+v", rep.Results[0])
	}
}
