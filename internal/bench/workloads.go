package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/cwe"
	"repro/internal/findings"
	"repro/internal/funcrank"
	"repro/internal/lexer"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/singleflight"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/store/findex"
	"repro/internal/trace"
)

// sink defeats dead-code elimination of benchmark bodies. sinkMu guards
// it in the one workload whose body fans out goroutines.
var (
	sink   float64
	sinkMu sync.Mutex
)

// workload is one named benchmark body over shared fixtures.
type workload struct {
	name string
	fn   func()
}

// workloads holds the fixtures every benchmark body closes over. All of it
// is built once in setupWorkloads so the timed loops measure steady-state
// work only.
type workloads struct {
	src   string
	langs metrics.File
	tree  *metrics.Tree

	fitData *ml.Dataset
	serve   *ml.RandomForest
	rows    [][]float64

	model      *core.Model
	modelJSON  []byte
	modelBin   []byte
	scoreInput metrics.FeatureVector

	// sess is a session pre-seeded with the extraction tree; the
	// compare_incremental workload applies one-file changesets to it, the
	// warm path the /v1/delta endpoint serves.
	sess      *core.Session
	editCount int

	// Storage-engine fixtures: a KV store pre-seeded with StoreKeys rows
	// (store_put overwrites them in rotation, store_scan walks them all)
	// and a findings history of StoreRuns runs for query_indexed. Both run
	// with NoSync so the workloads measure engine CPU, not fsync latency —
	// the variance of a CI box's disk must not gate verification.
	storeDB   *store.DB
	storeKeys [][]byte
	storeVal  []byte
	putCount  int
	hist      *findex.Store
	tmpDir    string

	// flight is the singleflight group score_coalesced fans bursts
	// through; shared so the key bookkeeping is steady-state.
	flight singleflight.Group[float64]
}

// close releases the storage fixtures; Run defers it.
func (w *workloads) close() {
	if w.hist != nil {
		w.hist.Close()
	}
	if w.storeDB != nil {
		w.storeDB.Close()
	}
	if w.tmpDir != "" {
		os.RemoveAll(w.tmpDir)
	}
}

func setupWorkloads(dir string) (*workloads, error) {
	seedTree, err := metrics.LoadTree(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if len(seedTree.Files) == 0 {
		return nil, fmt.Errorf("bench: no source files under %s", dir)
	}
	seed := seedTree.Files[0]
	w := &workloads{src: seed.Content, langs: seed}

	// The extraction tree: TreeFiles replicas of the example file, named
	// deterministically so the tree (and every derived feature) is stable.
	w.tree = &metrics.Tree{Name: "bench"}
	for i := 0; i < TreeFiles; i++ {
		w.tree.Files = append(w.tree.Files, metrics.File{
			Path:     fmt.Sprintf("f%02d%s", i, seed.Language.Extension()),
			Language: seed.Language,
			Content:  seed.Content,
		})
	}

	w.fitData = syntheticDataset(FitRows, FitCols, benchSeed)

	// The serving ensemble is round-tripped through its serialized form:
	// forest_batch measures inference with a loaded model — the state the
	// scoring daemon holds — not with a freshly fitted one.
	fitted := &ml.RandomForest{Trees: ServeTrees, MaxDepth: ServeDepth, Seed: benchSeed, Jobs: 1}
	if err := fitted.Fit(w.fitData); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	blob, err := ml.MarshalClassifier(fitted)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	loaded, err := ml.UnmarshalClassifier(blob)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.serve = loaded.(*ml.RandomForest)
	w.rows = syntheticRows(BatchRows, FitCols, benchSeed+1)

	w.model, err = syntheticModel()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := w.model.Save(&buf); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.modelJSON = buf.Bytes()
	var bin bytes.Buffer
	if err := w.model.SaveBinary(&bin); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.modelBin = bin.Bytes()
	w.scoreInput = metrics.Extract(w.tree)

	// The incremental session is seeded outside the timed loop; the
	// workload measures steady-state one-file applies only. Jobs is pinned
	// to one worker like every other concurrency knob, and no cache is
	// attached, so each apply pays the real re-analysis of its file.
	w.sess = core.NewSession("bench-inc", core.ExtractConfig{Jobs: 1})
	if _, err := w.sess.Apply(context.Background(), core.Changeset{Added: w.tree.Files}); err != nil {
		return nil, fmt.Errorf("bench: seed session: %w", err)
	}
	if err := w.setupStore(); err != nil {
		w.close()
		return nil, err
	}
	return w, nil
}

// setupStore builds the storage-engine fixtures outside the timed loops:
// a KV store of StoreKeys rows and a findings history of StoreRuns
// deterministic runs across StoreRepos repos.
func (w *workloads) setupStore() error {
	dir, err := os.MkdirTemp("", "secmetric-bench-store")
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	w.tmpDir = dir
	w.storeDB, err = store.Open(filepath.Join(dir, "kv.db"), store.Options{NoSync: true})
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	w.storeVal = make([]byte, StoreValueBytes)
	for i := range w.storeVal {
		w.storeVal[i] = byte(i*131 + 17)
	}
	w.storeKeys = make([][]byte, StoreKeys)
	for i := range w.storeKeys {
		w.storeKeys[i] = []byte(fmt.Sprintf("bench/k%06d", i))
	}
	const batch = 200
	for lo := 0; lo < StoreKeys; lo += batch {
		hi := lo + batch
		if hi > StoreKeys {
			hi = StoreKeys
		}
		if err := w.storeDB.Update(func(tx *store.Tx) error {
			for _, k := range w.storeKeys[lo:hi] {
				if err := tx.Put(k, w.storeVal); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("bench: seed store: %w", err)
		}
	}

	hdb, err := store.Open(filepath.Join(dir, "findings.db"), store.Options{NoSync: true})
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	w.hist = findex.OpenDB(hdb)
	rng := stats.NewRNG(benchSeed + 3)
	files := []string{"src/a.c", "src/b.c", "src/c.c", "lib/d.c"}
	cwes := []int{0, 78, 119, 121, 134, 369, 676}
	for i := 0; i < StoreRuns; i++ {
		rep := &findings.Report{}
		for j, nf := 0, rng.Intn(6); j < nf; j++ {
			rep.Findings = append(rep.Findings, findings.Finding{
				Rule:     "bench",
				CWE:      cwe.ID(cwes[rng.Intn(len(cwes))]),
				File:     files[rng.Intn(len(files))],
				Line:     j + 1,
				Severity: findings.Severity(rng.Intn(5)),
				Message:  "bench",
			})
		}
		run := findex.NewRun(fmt.Sprintf("bench-%d", i%StoreRepos), "bench", rep)
		run.Time = int64(1_700_000_000 + i*600)
		if rng.Bool(0.7) {
			run = run.WithScore(rng.Float64())
		}
		if _, err := w.hist.Append(run); err != nil {
			return fmt.Errorf("bench: seed history: %w", err)
		}
	}
	return nil
}

// syntheticDataset draws a two-class dataset with class-shifted Gaussian
// columns, so tree splits have real signal to find.
func syntheticDataset(n, p int, seed uint64) *ml.Dataset {
	rng := stats.NewRNG(seed)
	attrs := make([]string, p)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%02d", j)
	}
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		class := i % 2
		row := make([]float64, p)
		for j := range row {
			shift := 0.0
			if class == 1 && j%3 == 0 {
				shift = 1.5
			}
			row[j] = rng.Normal(shift, 1)
		}
		X[i] = row
		Y[i] = float64(class)
	}
	d, err := ml.NewDataset(attrs, []string{"no", "yes"}, X, Y)
	if err != nil {
		panic(err) // shapes are constructed consistent above
	}
	return d
}

// syntheticRows draws standalone prediction rows.
func syntheticRows(n, p int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Normal(0, 1.5)
		}
		rows[i] = row
	}
	return rows
}

// syntheticModel builds a loadable, scoreable forest model without paying
// for corpus generation: one ModelTrees-tree forest per standard
// hypothesis over the full feature schema.
func syntheticModel() (*core.Model, error) {
	d := syntheticDataset(FitRows, len(metrics.FeatureNames), benchSeed+2)
	names := append([]string(nil), metrics.FeatureNames...)
	m := &core.Model{
		Config:      core.TrainConfig{Kind: core.KindForest},
		Transformer: core.DefaultTransformer(),
	}
	for i, h := range core.StandardHypotheses() {
		rf := &ml.RandomForest{Trees: ModelTrees, MaxDepth: FitDepth, Seed: benchSeed + uint64(i), Jobs: 1}
		if err := rf.Fit(d); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		m.Hypotheses = append(m.Hypotheses, &core.HypothesisModel{
			Hypothesis: h,
			Kind:       core.KindForest,
			Classifier: rf,
			Features:   names,
			BaseRate:   0.5,
		})
	}
	return m, nil
}

// list returns the workload battery in report order.
func (w *workloads) list() []workload {
	return []workload{
		{"tokenize_file", func() {
			toks := lexer.Tokenize(w.src, w.langs.Language)
			sink += float64(len(toks))
		}},
		{"extract_base", func() {
			fv := metrics.Extract(w.tree)
			sink += fv[metrics.FeatKLoC]
		}},
		{"lint_tree", func() {
			rep := lint.Check(w.tree)
			sink += float64(rep.Total())
		}},
		{"analyze_full", func() {
			fv := core.ExtractFeatures(w.tree)
			sink += fv[metrics.FeatKLoC]
		}},
		{"compare_incremental", func() {
			// One-file edit against the warm session: re-analyzes exactly
			// one of the TreeFiles files, then folds the aggregates. The
			// content is counter-unique so every op models a real edit.
			w.editCount++
			f := w.tree.Files[0]
			f.Content = fmt.Sprintf("%s\n// bench edit %d\n", w.tree.Files[0].Content, w.editCount)
			res, err := w.sess.Apply(context.Background(), core.Changeset{Modified: []metrics.File{f}})
			if err != nil {
				panic(err)
			}
			sink += res.Features[metrics.FeatKLoC]
		}},
		{"rank", func() {
			// Function-level feature extraction + LEOPARD binning over the
			// replica tree, single-worker like every other concurrency knob.
			r, err := funcrank.Rank(context.Background(), w.tree, funcrank.Config{Jobs: 1})
			if err != nil {
				panic(err)
			}
			sink += float64(r.Functions + r.Bins)
		}},
		{"forest_fit", func() {
			rf := &ml.RandomForest{Trees: FitTrees, MaxDepth: FitDepth, Seed: benchSeed, Jobs: 1}
			if err := rf.Fit(w.fitData); err != nil {
				panic(err)
			}
			sink += float64(rf.PredictClass(w.rows[0]))
		}},
		{"forest_batch", func() {
			sink += w.forestBatch()
		}},
		{"score", func() {
			rep := w.model.Score("bench", w.scoreInput)
			sink += rep.RiskScore
		}},
		{"score_coalesced", func() {
			// A CoalesceFanout-wide burst of identical scores through the
			// singleflight group: one leader runs the model, the rest
			// adopt its flight — the dedup hot path the daemon's request
			// coalescer pays per burst (goroutine fan-out, channel wait,
			// key bookkeeping) on top of one model execution.
			var wg sync.WaitGroup
			for i := 0; i < CoalesceFanout; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					v, _, _ := w.flight.Do(context.Background(), "score", func() float64 {
						return w.model.Score("bench", w.scoreInput).RiskScore
					})
					sinkMu.Lock()
					sink += v
					sinkMu.Unlock()
				}()
			}
			wg.Wait()
		}},
		{"model_load_json", func() {
			m, err := core.LoadModel(bytes.NewReader(w.modelJSON))
			if err != nil {
				panic(err)
			}
			sink += float64(len(m.Hypotheses))
		}},
		{"model_load_bin", func() {
			m, err := core.LoadModel(bytes.NewReader(w.modelBin))
			if err != nil {
				panic(err)
			}
			sink += float64(len(m.Hypotheses))
		}},
		{"store_put", func() {
			// One committed overwrite per op, rotating through the seeded
			// keys: the copy-on-write update path plus WAL encode/commit,
			// with the freelist recycling the shadowed pages.
			k := w.storeKeys[w.putCount%StoreKeys]
			w.putCount++
			w.storeVal[0] = byte(w.putCount)
			if err := w.storeDB.Update(func(tx *store.Tx) error {
				return tx.Put(k, w.storeVal)
			}); err != nil {
				panic(err)
			}
			sink++
		}},
		{"store_scan", func() {
			// Full in-order walk of the StoreKeys rows through an MVCC
			// snapshot — the read path /v1/query's full scan sits on.
			snap, err := w.storeDB.Snapshot()
			if err != nil {
				panic(err)
			}
			n := 0
			err = snap.Scan(nil, nil, func(k, v []byte) (bool, error) {
				n += len(v)
				return true, nil
			})
			snap.Release()
			if err != nil {
				panic(err)
			}
			sink += float64(n)
		}},
		{"query_indexed", func() {
			// The acceptance query over the seeded history: index-planned
			// candidate fetch, row filtering, sort, and LIMIT.
			runs, _, err := w.hist.QueryString(
				"cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20",
				findex.Options{})
			if err != nil {
				panic(err)
			}
			sink += float64(len(runs))
		}},
	}
}

// forestBatch predicts class probabilities for every benchmark row through
// the compiled batch path and folds them into one number for the sink.
func (w *workloads) forestBatch() float64 {
	s := 0.0
	for _, p := range w.serve.PredictProbaBatch(w.rows) {
		s += p[1]
	}
	return s
}

// phaseTotals runs one traced, single-worker full analysis over the tree
// and returns the per-phase busy totals.
func (w *workloads) phaseTotals() []PhaseTotal {
	tr := trace.New("bench")
	ctx := trace.ContextWithSpan(context.Background(), tr.Root())
	_, _, err := core.ExtractFeaturesDiagnostics(ctx, w.tree, core.ExtractConfig{Jobs: 1})
	tr.Finish()
	if err != nil {
		return nil
	}
	var out []PhaseTotal
	for _, p := range tr.PhaseTotals() {
		out = append(out, PhaseTotal{Phase: p.Phase, Seconds: p.Seconds, Count: p.Count})
	}
	return out
}
