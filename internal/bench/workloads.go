package bench

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/funcrank"
	"repro/internal/lexer"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sink defeats dead-code elimination of benchmark bodies.
var sink float64

// workload is one named benchmark body over shared fixtures.
type workload struct {
	name string
	fn   func()
}

// workloads holds the fixtures every benchmark body closes over. All of it
// is built once in setupWorkloads so the timed loops measure steady-state
// work only.
type workloads struct {
	src   string
	langs metrics.File
	tree  *metrics.Tree

	fitData *ml.Dataset
	serve   *ml.RandomForest
	rows    [][]float64

	model      *core.Model
	modelJSON  []byte
	modelBin   []byte
	scoreInput metrics.FeatureVector

	// sess is a session pre-seeded with the extraction tree; the
	// compare_incremental workload applies one-file changesets to it, the
	// warm path the /v1/delta endpoint serves.
	sess      *core.Session
	editCount int
}

func setupWorkloads(dir string) (*workloads, error) {
	seedTree, err := metrics.LoadTree(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if len(seedTree.Files) == 0 {
		return nil, fmt.Errorf("bench: no source files under %s", dir)
	}
	seed := seedTree.Files[0]
	w := &workloads{src: seed.Content, langs: seed}

	// The extraction tree: TreeFiles replicas of the example file, named
	// deterministically so the tree (and every derived feature) is stable.
	w.tree = &metrics.Tree{Name: "bench"}
	for i := 0; i < TreeFiles; i++ {
		w.tree.Files = append(w.tree.Files, metrics.File{
			Path:     fmt.Sprintf("f%02d%s", i, seed.Language.Extension()),
			Language: seed.Language,
			Content:  seed.Content,
		})
	}

	w.fitData = syntheticDataset(FitRows, FitCols, benchSeed)

	// The serving ensemble is round-tripped through its serialized form:
	// forest_batch measures inference with a loaded model — the state the
	// scoring daemon holds — not with a freshly fitted one.
	fitted := &ml.RandomForest{Trees: ServeTrees, MaxDepth: ServeDepth, Seed: benchSeed, Jobs: 1}
	if err := fitted.Fit(w.fitData); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	blob, err := ml.MarshalClassifier(fitted)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	loaded, err := ml.UnmarshalClassifier(blob)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.serve = loaded.(*ml.RandomForest)
	w.rows = syntheticRows(BatchRows, FitCols, benchSeed+1)

	w.model, err = syntheticModel()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := w.model.Save(&buf); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.modelJSON = buf.Bytes()
	var bin bytes.Buffer
	if err := w.model.SaveBinary(&bin); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	w.modelBin = bin.Bytes()
	w.scoreInput = metrics.Extract(w.tree)

	// The incremental session is seeded outside the timed loop; the
	// workload measures steady-state one-file applies only. Jobs is pinned
	// to one worker like every other concurrency knob, and no cache is
	// attached, so each apply pays the real re-analysis of its file.
	w.sess = core.NewSession("bench-inc", core.ExtractConfig{Jobs: 1})
	if _, err := w.sess.Apply(context.Background(), core.Changeset{Added: w.tree.Files}); err != nil {
		return nil, fmt.Errorf("bench: seed session: %w", err)
	}
	return w, nil
}

// syntheticDataset draws a two-class dataset with class-shifted Gaussian
// columns, so tree splits have real signal to find.
func syntheticDataset(n, p int, seed uint64) *ml.Dataset {
	rng := stats.NewRNG(seed)
	attrs := make([]string, p)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%02d", j)
	}
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		class := i % 2
		row := make([]float64, p)
		for j := range row {
			shift := 0.0
			if class == 1 && j%3 == 0 {
				shift = 1.5
			}
			row[j] = rng.Normal(shift, 1)
		}
		X[i] = row
		Y[i] = float64(class)
	}
	d, err := ml.NewDataset(attrs, []string{"no", "yes"}, X, Y)
	if err != nil {
		panic(err) // shapes are constructed consistent above
	}
	return d
}

// syntheticRows draws standalone prediction rows.
func syntheticRows(n, p int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Normal(0, 1.5)
		}
		rows[i] = row
	}
	return rows
}

// syntheticModel builds a loadable, scoreable forest model without paying
// for corpus generation: one ModelTrees-tree forest per standard
// hypothesis over the full feature schema.
func syntheticModel() (*core.Model, error) {
	d := syntheticDataset(FitRows, len(metrics.FeatureNames), benchSeed+2)
	names := append([]string(nil), metrics.FeatureNames...)
	m := &core.Model{
		Config:      core.TrainConfig{Kind: core.KindForest},
		Transformer: core.DefaultTransformer(),
	}
	for i, h := range core.StandardHypotheses() {
		rf := &ml.RandomForest{Trees: ModelTrees, MaxDepth: FitDepth, Seed: benchSeed + uint64(i), Jobs: 1}
		if err := rf.Fit(d); err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		m.Hypotheses = append(m.Hypotheses, &core.HypothesisModel{
			Hypothesis: h,
			Kind:       core.KindForest,
			Classifier: rf,
			Features:   names,
			BaseRate:   0.5,
		})
	}
	return m, nil
}

// list returns the workload battery in report order.
func (w *workloads) list() []workload {
	return []workload{
		{"tokenize_file", func() {
			toks := lexer.Tokenize(w.src, w.langs.Language)
			sink += float64(len(toks))
		}},
		{"extract_base", func() {
			fv := metrics.Extract(w.tree)
			sink += fv[metrics.FeatKLoC]
		}},
		{"lint_tree", func() {
			rep := lint.Check(w.tree)
			sink += float64(rep.Total())
		}},
		{"analyze_full", func() {
			fv := core.ExtractFeatures(w.tree)
			sink += fv[metrics.FeatKLoC]
		}},
		{"compare_incremental", func() {
			// One-file edit against the warm session: re-analyzes exactly
			// one of the TreeFiles files, then folds the aggregates. The
			// content is counter-unique so every op models a real edit.
			w.editCount++
			f := w.tree.Files[0]
			f.Content = fmt.Sprintf("%s\n// bench edit %d\n", w.tree.Files[0].Content, w.editCount)
			res, err := w.sess.Apply(context.Background(), core.Changeset{Modified: []metrics.File{f}})
			if err != nil {
				panic(err)
			}
			sink += res.Features[metrics.FeatKLoC]
		}},
		{"rank", func() {
			// Function-level feature extraction + LEOPARD binning over the
			// replica tree, single-worker like every other concurrency knob.
			r, err := funcrank.Rank(context.Background(), w.tree, funcrank.Config{Jobs: 1})
			if err != nil {
				panic(err)
			}
			sink += float64(r.Functions + r.Bins)
		}},
		{"forest_fit", func() {
			rf := &ml.RandomForest{Trees: FitTrees, MaxDepth: FitDepth, Seed: benchSeed, Jobs: 1}
			if err := rf.Fit(w.fitData); err != nil {
				panic(err)
			}
			sink += float64(rf.PredictClass(w.rows[0]))
		}},
		{"forest_batch", func() {
			sink += w.forestBatch()
		}},
		{"score", func() {
			rep := w.model.Score("bench", w.scoreInput)
			sink += rep.RiskScore
		}},
		{"model_load_json", func() {
			m, err := core.LoadModel(bytes.NewReader(w.modelJSON))
			if err != nil {
				panic(err)
			}
			sink += float64(len(m.Hypotheses))
		}},
		{"model_load_bin", func() {
			m, err := core.LoadModel(bytes.NewReader(w.modelBin))
			if err != nil {
				panic(err)
			}
			sink += float64(len(m.Hypotheses))
		}},
	}
}

// forestBatch predicts class probabilities for every benchmark row through
// the compiled batch path and folds them into one number for the sink.
func (w *workloads) forestBatch() float64 {
	s := 0.0
	for _, p := range w.serve.PredictProbaBatch(w.rows) {
		s += p[1]
	}
	return s
}

// phaseTotals runs one traced, single-worker full analysis over the tree
// and returns the per-phase busy totals.
func (w *workloads) phaseTotals() []PhaseTotal {
	tr := trace.New("bench")
	ctx := trace.ContextWithSpan(context.Background(), tr.Root())
	_, _, err := core.ExtractFeaturesDiagnostics(ctx, w.tree, core.ExtractConfig{Jobs: 1})
	tr.Finish()
	if err != nil {
		return nil
	}
	var out []PhaseTotal
	for _, p := range tr.PhaseTotals() {
		out = append(out, PhaseTotal{Phase: p.Phase, Seconds: p.Seconds, Count: p.Count})
	}
	return out
}
