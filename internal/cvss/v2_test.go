package cvss

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Reference v2 vectors with NVD-published scores.
var v2Known = []struct {
	vector string
	score  float64
}{
	{"AV:N/AC:L/Au:N/C:P/I:P/A:P", 7.5},
	{"AV:N/AC:L/Au:N/C:C/I:C/A:C", 10.0},
	{"AV:L/AC:L/Au:N/C:C/I:C/A:C", 7.2},
	{"AV:N/AC:L/Au:N/C:P/I:N/A:N", 5.0},
	{"AV:N/AC:M/Au:N/C:N/I:P/A:N", 4.3}, // classic XSS
	{"AV:N/AC:L/Au:N/C:N/I:N/A:N", 0.0},
}

func TestV2KnownScores(t *testing.T) {
	for _, tc := range v2Known {
		v, err := ParseV2(tc.vector)
		if err != nil {
			t.Fatalf("%s: %v", tc.vector, err)
		}
		got, err := v.BaseScore()
		if err != nil {
			t.Fatalf("%s: %v", tc.vector, err)
		}
		if got != tc.score {
			t.Errorf("%s: score = %v, want %v", tc.vector, got, tc.score)
		}
	}
}

func TestParseV2Parentheses(t *testing.T) {
	v, err := ParseV2("(AV:N/AC:L/Au:N/C:P/I:P/A:P)")
	if err != nil {
		t.Fatal(err)
	}
	if v.AV != V2AVNetwork {
		t.Fatalf("AV = %v", v.AV)
	}
}

func TestParseV2Errors(t *testing.T) {
	bad := []string{
		"",
		"AV:N/AC:L/Au:N/C:P/I:P",     // missing A
		"AV:N/AC:L/Au:N/C:P/I:P/A:X", // bad impact
		"AV:N/AV:N/AC:L/Au:N/C:P/I:P/A:P",
		"ZZ:Q",
	}
	for _, s := range bad {
		if _, err := ParseV2(s); err == nil {
			t.Errorf("ParseV2(%q) succeeded, want error", s)
		}
	}
}

func randomV2(r *stats.RNG) V2 {
	return V2{
		AV: V2AccessVector(1 + r.Intn(3)),
		AC: V2AccessComplexity(1 + r.Intn(3)),
		Au: V2Authentication(1 + r.Intn(3)),
		C:  V2Impact(1 + r.Intn(3)),
		I:  V2Impact(1 + r.Intn(3)),
		A:  V2Impact(1 + r.Intn(3)),
	}
}

func TestV2ScoreBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV2(r)
		s := v.MustBaseScore()
		return s >= 0 && s <= 10 && math.Abs(s*10-math.Round(s*10)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestV2RoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV2(r)
		parsed, err := ParseV2(v.String())
		return err == nil && parsed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestV2ZeroImpactIsZero(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV2(r)
		v.C, v.I, v.A = V2ImpactNone, V2ImpactNone, V2ImpactNone
		return v.MustBaseScore() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestV2NetworkDominatesLocal(t *testing.T) {
	// Switching AV from Local to Network with everything else fixed must not
	// decrease the score.
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV2(r)
		v.AV = V2AVLocal
		local := v.MustBaseScore()
		v.AV = V2AVNetwork
		return v.MustBaseScore() >= local
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestV2ValidateZero(t *testing.T) {
	var v V2
	if err := v.Validate(); err == nil {
		t.Fatal("zero v2 vector validated")
	}
}
