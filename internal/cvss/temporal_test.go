package cvss

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestTemporalScoreKnown(t *testing.T) {
	// 9.8 base with E:U/RL:O/RC:U -> 9.8*0.91*0.95*0.92 = 7.796 -> 7.8
	v, err := ParseV3("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")
	if err != nil {
		t.Fatal(err)
	}
	tm, err := ParseTemporal("E:U/RL:O/RC:U")
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.TemporalScore(tm)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.8 {
		t.Fatalf("temporal = %v, want 7.8", got)
	}
}

func TestTemporalNotDefinedIsBase(t *testing.T) {
	v, _ := ParseV3("AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N")
	base, _ := v.BaseScore()
	got, err := v.TemporalScore(Temporal{})
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Fatalf("not-defined temporal = %v, want base %v", got, base)
	}
}

func TestTemporalNeverRaisesScore(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV3(r)
		tm := Temporal{
			E:  ExploitMaturity(r.Intn(5)),
			RL: RemediationLevel(r.Intn(5)),
			RC: ReportConfidence(r.Intn(4)),
		}
		base := v.MustBaseScore()
		got, err := v.TemporalScore(tm)
		if err != nil {
			return false
		}
		// Round-up can add at most 0.1 over the product, which is <= base.
		return got <= base+1e-9 && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		tm := Temporal{
			E:  ExploitMaturity(r.Intn(5)),
			RL: RemediationLevel(r.Intn(5)),
			RC: ReportConfidence(r.Intn(4)),
		}
		parsed, err := ParseTemporal(tm.String())
		return err == nil && parsed == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTemporalParseErrors(t *testing.T) {
	for _, bad := range []string{"E:Z", "RL:Q", "RC:9", "E=U", "ZZ:X"} {
		if _, err := ParseTemporal(bad); err == nil {
			t.Errorf("ParseTemporal(%q) succeeded", bad)
		}
	}
}

func TestTemporalInvalidBase(t *testing.T) {
	var v V3
	if _, err := v.TemporalScore(Temporal{}); err == nil {
		t.Fatal("temporal score of invalid vector succeeded")
	}
}
