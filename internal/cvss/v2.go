package cvss

import (
	"fmt"
	"math"
	"strings"
)

// V2 metric enumerations. CVSS v2.0 predates the PR/UI/S split; its base
// vector is AV/AC/Au/C/I/A. Older CVE entries in the corpus carry v2 vectors.

// V2AccessVector is the v2 analogue of AttackVector.
type V2AccessVector int

// V2AccessVector values.
const (
	V2AVUnset V2AccessVector = iota
	V2AVNetwork
	V2AVAdjacent
	V2AVLocal
)

// V2AccessComplexity has three levels in v2.
type V2AccessComplexity int

// V2AccessComplexity values.
const (
	V2ACUnset V2AccessComplexity = iota
	V2ACLow
	V2ACMedium
	V2ACHigh
)

// V2Authentication counts required authentication events.
type V2Authentication int

// V2Authentication values.
const (
	V2AuUnset V2Authentication = iota
	V2AuNone
	V2AuSingle
	V2AuMultiple
)

// V2Impact is the v2 per-dimension impact (None/Partial/Complete).
type V2Impact int

// V2Impact values.
const (
	V2ImpactUnset V2Impact = iota
	V2ImpactNone
	V2ImpactPartial
	V2ImpactComplete
)

// V2 is a CVSS v2.0 base vector.
type V2 struct {
	AV V2AccessVector
	AC V2AccessComplexity
	Au V2Authentication
	C  V2Impact
	I  V2Impact
	A  V2Impact
}

// Validate reports whether every metric has been set.
func (v V2) Validate() error {
	switch {
	case v.AV == V2AVUnset:
		return fmt.Errorf("cvss: v2 vector missing AV")
	case v.AC == V2ACUnset:
		return fmt.Errorf("cvss: v2 vector missing AC")
	case v.Au == V2AuUnset:
		return fmt.Errorf("cvss: v2 vector missing Au")
	case v.C == V2ImpactUnset:
		return fmt.Errorf("cvss: v2 vector missing C")
	case v.I == V2ImpactUnset:
		return fmt.Errorf("cvss: v2 vector missing I")
	case v.A == V2ImpactUnset:
		return fmt.Errorf("cvss: v2 vector missing A")
	}
	return nil
}

func (v V2) avWeight() float64 {
	switch v.AV {
	case V2AVNetwork:
		return 1.0
	case V2AVAdjacent:
		return 0.646
	case V2AVLocal:
		return 0.395
	}
	return 0
}

func (v V2) acWeight() float64 {
	switch v.AC {
	case V2ACLow:
		return 0.71
	case V2ACMedium:
		return 0.61
	case V2ACHigh:
		return 0.35
	}
	return 0
}

func (v V2) auWeight() float64 {
	switch v.Au {
	case V2AuNone:
		return 0.704
	case V2AuSingle:
		return 0.56
	case V2AuMultiple:
		return 0.45
	}
	return 0
}

func v2ImpactWeight(i V2Impact) float64 {
	switch i {
	case V2ImpactComplete:
		return 0.660
	case V2ImpactPartial:
		return 0.275
	case V2ImpactNone:
		return 0
	}
	return 0
}

// Impact returns the v2 impact sub-score.
func (v V2) Impact() float64 {
	return 10.41 * (1 - (1-v2ImpactWeight(v.C))*(1-v2ImpactWeight(v.I))*(1-v2ImpactWeight(v.A)))
}

// Exploitability returns the v2 exploitability sub-score.
func (v V2) Exploitability() float64 {
	return 20 * v.avWeight() * v.acWeight() * v.auWeight()
}

// BaseScore computes the CVSS v2.0 base score per the specification:
// round_to_1_decimal(((0.6*Impact)+(0.4*Exploitability)-1.5)*f(Impact)).
func (v V2) BaseScore() (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	impact := v.Impact()
	fImpact := 1.176
	if impact == 0 {
		fImpact = 0
	}
	raw := ((0.6 * impact) + (0.4 * v.Exploitability()) - 1.5) * fImpact
	// Round to one decimal (nearest, per v2 spec).
	score := math.Round(raw*10) / 10
	if score < 0 {
		score = 0
	}
	if score > 10 {
		score = 10
	}
	return score, nil
}

// MustBaseScore panics if the vector is invalid.
func (v V2) MustBaseScore() float64 {
	s, err := v.BaseScore()
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the v2 vector in the standard "(AV:N/AC:L/Au:N/C:P/I:P/A:P)"
// form without the surrounding parentheses.
func (v V2) String() string {
	var b strings.Builder
	b.WriteString("AV:" + pick(int(v.AV), "", "N", "A", "L"))
	b.WriteString("/AC:" + pick(int(v.AC), "", "L", "M", "H"))
	b.WriteString("/Au:" + pick(int(v.Au), "", "N", "S", "M"))
	b.WriteString("/C:" + pick(int(v.C), "", "N", "P", "C"))
	b.WriteString("/I:" + pick(int(v.I), "", "N", "P", "C"))
	b.WriteString("/A:" + pick(int(v.A), "", "N", "P", "C"))
	return b.String()
}

// ParseV2 parses a v2 base vector such as "AV:N/AC:L/Au:N/C:P/I:P/A:P".
// Surrounding parentheses are tolerated.
func ParseV2(s string) (V2, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(s), ")"), "(")
	var v V2
	seen := map[string]bool{}
	for _, part := range strings.Split(s, "/") {
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return V2{}, fmt.Errorf("cvss: malformed v2 metric %q", part)
		}
		key, val := kv[0], kv[1]
		if seen[key] {
			return V2{}, fmt.Errorf("cvss: duplicate v2 metric %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "AV":
			v.AV, err = parseV2AV(val)
		case "AC":
			v.AC, err = parseV2AC(val)
		case "Au":
			v.Au, err = parseV2Au(val)
		case "C":
			v.C, err = parseV2Impact(val)
		case "I":
			v.I, err = parseV2Impact(val)
		case "A":
			v.A, err = parseV2Impact(val)
		default:
			return V2{}, fmt.Errorf("cvss: unknown v2 metric %q", key)
		}
		if err != nil {
			return V2{}, err
		}
	}
	if err := v.Validate(); err != nil {
		return V2{}, err
	}
	return v, nil
}

func parseV2AV(s string) (V2AccessVector, error) {
	switch s {
	case "N":
		return V2AVNetwork, nil
	case "A":
		return V2AVAdjacent, nil
	case "L":
		return V2AVLocal, nil
	}
	return V2AVUnset, fmt.Errorf("cvss: bad v2 AV value %q", s)
}

func parseV2AC(s string) (V2AccessComplexity, error) {
	switch s {
	case "L":
		return V2ACLow, nil
	case "M":
		return V2ACMedium, nil
	case "H":
		return V2ACHigh, nil
	}
	return V2ACUnset, fmt.Errorf("cvss: bad v2 AC value %q", s)
}

func parseV2Au(s string) (V2Authentication, error) {
	switch s {
	case "N":
		return V2AuNone, nil
	case "S":
		return V2AuSingle, nil
	case "M":
		return V2AuMultiple, nil
	}
	return V2AuUnset, fmt.Errorf("cvss: bad v2 Au value %q", s)
}

func parseV2Impact(s string) (V2Impact, error) {
	switch s {
	case "N":
		return V2ImpactNone, nil
	case "P":
		return V2ImpactPartial, nil
	case "C":
		return V2ImpactComplete, nil
	}
	return V2ImpactUnset, fmt.Errorf("cvss: bad v2 impact value %q", s)
}
