// Package cvss implements the Common Vulnerability Scoring System base-score
// arithmetic for versions 2.0 and 3.0, including vector parsing, formatting,
// validation, and qualitative severity banding.
//
// The paper's prediction hypotheses are phrased over CVSS v3.0 factors
// ("CVSS > 7?", "Attack Vector = N?"), so this package is the ground-truth
// labelling substrate for the training pipeline.
package cvss

import (
	"fmt"
	"math"
	"strings"
)

// Enumerations for the CVSS v3.0 base metrics. The zero value of each type is
// invalid so an unset metric is detectable.

// AttackVector reflects the context by which exploitation is possible.
type AttackVector int

// AttackVector values, most remote first.
const (
	AVUnset AttackVector = iota
	AVNetwork
	AVAdjacent
	AVLocal
	AVPhysical
)

// AttackComplexity describes conditions beyond the attacker's control.
type AttackComplexity int

// AttackComplexity values.
const (
	ACUnset AttackComplexity = iota
	ACLow
	ACHigh
)

// PrivilegesRequired describes the privilege level the attacker needs.
type PrivilegesRequired int

// PrivilegesRequired values.
const (
	PRUnset PrivilegesRequired = iota
	PRNone
	PRLow
	PRHigh
)

// UserInteraction captures whether a user must participate.
type UserInteraction int

// UserInteraction values.
const (
	UIUnset UserInteraction = iota
	UINone
	UIRequired
)

// Scope captures whether the vulnerability affects resources beyond its
// security authority.
type Scope int

// Scope values.
const (
	ScopeUnset Scope = iota
	ScopeUnchanged
	ScopeChanged
)

// Impact is the degree of loss for one of the C/I/A dimensions.
type Impact int

// Impact values.
const (
	ImpactUnset Impact = iota
	ImpactNone
	ImpactLow
	ImpactHigh
)

// V3 is a CVSS v3.0 base vector.
type V3 struct {
	AV AttackVector
	AC AttackComplexity
	PR PrivilegesRequired
	UI UserInteraction
	S  Scope
	C  Impact
	I  Impact
	A  Impact
}

// Validate reports whether every metric has been set.
func (v V3) Validate() error {
	switch {
	case v.AV == AVUnset:
		return fmt.Errorf("cvss: v3 vector missing AV")
	case v.AC == ACUnset:
		return fmt.Errorf("cvss: v3 vector missing AC")
	case v.PR == PRUnset:
		return fmt.Errorf("cvss: v3 vector missing PR")
	case v.UI == UIUnset:
		return fmt.Errorf("cvss: v3 vector missing UI")
	case v.S == ScopeUnset:
		return fmt.Errorf("cvss: v3 vector missing S")
	case v.C == ImpactUnset:
		return fmt.Errorf("cvss: v3 vector missing C")
	case v.I == ImpactUnset:
		return fmt.Errorf("cvss: v3 vector missing I")
	case v.A == ImpactUnset:
		return fmt.Errorf("cvss: v3 vector missing A")
	}
	return nil
}

func (v V3) avWeight() float64 {
	switch v.AV {
	case AVNetwork:
		return 0.85
	case AVAdjacent:
		return 0.62
	case AVLocal:
		return 0.55
	case AVPhysical:
		return 0.2
	}
	return 0
}

func (v V3) acWeight() float64 {
	switch v.AC {
	case ACLow:
		return 0.77
	case ACHigh:
		return 0.44
	}
	return 0
}

func (v V3) prWeight() float64 {
	changed := v.S == ScopeChanged
	switch v.PR {
	case PRNone:
		return 0.85
	case PRLow:
		if changed {
			return 0.68
		}
		return 0.62
	case PRHigh:
		if changed {
			return 0.5
		}
		return 0.27
	}
	return 0
}

func (v V3) uiWeight() float64 {
	switch v.UI {
	case UINone:
		return 0.85
	case UIRequired:
		return 0.62
	}
	return 0
}

func impactWeight(i Impact) float64 {
	switch i {
	case ImpactHigh:
		return 0.56
	case ImpactLow:
		return 0.22
	case ImpactNone:
		return 0
	}
	return 0
}

// roundUp1 implements the CVSS v3 "round up to 1 decimal place" rule.
func roundUp1(x float64) float64 {
	return math.Ceil(x*10) / 10
}

// ISCBase returns the impact sub-score base 1-(1-C)(1-I)(1-A).
func (v V3) ISCBase() float64 {
	return 1 - (1-impactWeight(v.C))*(1-impactWeight(v.I))*(1-impactWeight(v.A))
}

// ImpactSubScore returns the impact sub-score, scope-adjusted per the spec.
func (v V3) ImpactSubScore() float64 {
	isc := v.ISCBase()
	if v.S == ScopeChanged {
		return 7.52*(isc-0.029) - 3.25*math.Pow(isc-0.02, 15)
	}
	return 6.42 * isc
}

// ExploitabilitySubScore returns 8.22 * AV * AC * PR * UI.
func (v V3) ExploitabilitySubScore() float64 {
	return 8.22 * v.avWeight() * v.acWeight() * v.prWeight() * v.uiWeight()
}

// BaseScore computes the CVSS v3.0 base score in [0, 10] per the
// specification. It returns an error if the vector is incomplete.
func (v V3) BaseScore() (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	impact := v.ImpactSubScore()
	if impact <= 0 {
		return 0, nil
	}
	expl := v.ExploitabilitySubScore()
	var raw float64
	if v.S == ScopeChanged {
		raw = math.Min(1.08*(impact+expl), 10)
	} else {
		raw = math.Min(impact+expl, 10)
	}
	return roundUp1(raw), nil
}

// MustBaseScore is BaseScore for vectors known to be valid; it panics on an
// invalid vector and is intended for generated corpora and tests.
func (v V3) MustBaseScore() float64 {
	s, err := v.BaseScore()
	if err != nil {
		panic(err)
	}
	return s
}

// Severity is the qualitative severity rating scale shared by v2 and v3.
type Severity int

// Severity bands, ordered.
const (
	SeverityNone Severity = iota
	SeverityLow
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

// String returns the canonical name of the band.
func (s Severity) String() string {
	switch s {
	case SeverityNone:
		return "NONE"
	case SeverityLow:
		return "LOW"
	case SeverityMedium:
		return "MEDIUM"
	case SeverityHigh:
		return "HIGH"
	case SeverityCritical:
		return "CRITICAL"
	}
	return "UNKNOWN"
}

// SeverityOf maps a v3 base score to its qualitative band.
func SeverityOf(score float64) Severity {
	switch {
	case score <= 0:
		return SeverityNone
	case score < 4.0:
		return SeverityLow
	case score < 7.0:
		return SeverityMedium
	case score < 9.0:
		return SeverityHigh
	default:
		return SeverityCritical
	}
}

// String renders the vector in the standard "CVSS:3.0/AV:N/..." form.
func (v V3) String() string {
	var b strings.Builder
	b.WriteString("CVSS:3.0")
	b.WriteString("/AV:" + pick(int(v.AV), "", "N", "A", "L", "P"))
	b.WriteString("/AC:" + pick(int(v.AC), "", "L", "H"))
	b.WriteString("/PR:" + pick(int(v.PR), "", "N", "L", "H"))
	b.WriteString("/UI:" + pick(int(v.UI), "", "N", "R"))
	b.WriteString("/S:" + pick(int(v.S), "", "U", "C"))
	b.WriteString("/C:" + pick(int(v.C), "", "N", "L", "H"))
	b.WriteString("/I:" + pick(int(v.I), "", "N", "L", "H"))
	b.WriteString("/A:" + pick(int(v.A), "", "N", "L", "H"))
	return b.String()
}

func pick(i int, names ...string) string {
	if i < 0 || i >= len(names) {
		return "?"
	}
	return names[i]
}

// ParseV3 parses a vector of the form "CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H".
// The "CVSS:3.0" or "CVSS:3.1" prefix is optional. Metrics may appear in any
// order; duplicates and unknown metrics are errors.
func ParseV3(s string) (V3, error) {
	var v V3
	parts := strings.Split(s, "/")
	seen := map[string]bool{}
	for _, part := range parts {
		if part == "" {
			continue
		}
		if strings.HasPrefix(part, "CVSS:3") {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return V3{}, fmt.Errorf("cvss: malformed metric %q", part)
		}
		key, val := kv[0], kv[1]
		if seen[key] {
			return V3{}, fmt.Errorf("cvss: duplicate metric %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "AV":
			v.AV, err = parseAV(val)
		case "AC":
			v.AC, err = parseAC(val)
		case "PR":
			v.PR, err = parsePR(val)
		case "UI":
			v.UI, err = parseUI(val)
		case "S":
			v.S, err = parseScope(val)
		case "C":
			v.C, err = parseImpact(val)
		case "I":
			v.I, err = parseImpact(val)
		case "A":
			v.A, err = parseImpact(val)
		default:
			return V3{}, fmt.Errorf("cvss: unknown metric %q", key)
		}
		if err != nil {
			return V3{}, err
		}
	}
	if err := v.Validate(); err != nil {
		return V3{}, err
	}
	return v, nil
}

func parseAV(s string) (AttackVector, error) {
	switch s {
	case "N":
		return AVNetwork, nil
	case "A":
		return AVAdjacent, nil
	case "L":
		return AVLocal, nil
	case "P":
		return AVPhysical, nil
	}
	return AVUnset, fmt.Errorf("cvss: bad AV value %q", s)
}

func parseAC(s string) (AttackComplexity, error) {
	switch s {
	case "L":
		return ACLow, nil
	case "H":
		return ACHigh, nil
	}
	return ACUnset, fmt.Errorf("cvss: bad AC value %q", s)
}

func parsePR(s string) (PrivilegesRequired, error) {
	switch s {
	case "N":
		return PRNone, nil
	case "L":
		return PRLow, nil
	case "H":
		return PRHigh, nil
	}
	return PRUnset, fmt.Errorf("cvss: bad PR value %q", s)
}

func parseUI(s string) (UserInteraction, error) {
	switch s {
	case "N":
		return UINone, nil
	case "R":
		return UIRequired, nil
	}
	return UIUnset, fmt.Errorf("cvss: bad UI value %q", s)
}

func parseScope(s string) (Scope, error) {
	switch s {
	case "U":
		return ScopeUnchanged, nil
	case "C":
		return ScopeChanged, nil
	}
	return ScopeUnset, fmt.Errorf("cvss: bad S value %q", s)
}

func parseImpact(s string) (Impact, error) {
	switch s {
	case "N":
		return ImpactNone, nil
	case "L":
		return ImpactLow, nil
	case "H":
		return ImpactHigh, nil
	}
	return ImpactUnset, fmt.Errorf("cvss: bad impact value %q", s)
}
