package cvss

import (
	"fmt"
	"strings"
)

// Temporal metrics (CVSS v3.0 §3): exploit code maturity (E), remediation
// level (RL), and report confidence (RC) adjust the base score over a
// vulnerability's lifetime. §5.1 lists "exploit code maturity (E)" among
// the CVSS factors the model can learn against.

// ExploitMaturity is the E metric.
type ExploitMaturity int

// ExploitMaturity values. Not Defined weighs 1.0, as do the other
// not-defined temporal values.
const (
	ENotDefined ExploitMaturity = iota
	EUnproven
	EProofOfConcept
	EFunctional
	EHigh
)

// RemediationLevel is the RL metric.
type RemediationLevel int

// RemediationLevel values.
const (
	RLNotDefined RemediationLevel = iota
	RLOfficialFix
	RLTemporaryFix
	RLWorkaround
	RLUnavailable
)

// ReportConfidence is the RC metric.
type ReportConfidence int

// ReportConfidence values.
const (
	RCNotDefined ReportConfidence = iota
	RCUnknown
	RCReasonable
	RCConfirmed
)

// Temporal is a v3.0 temporal metric group.
type Temporal struct {
	E  ExploitMaturity
	RL RemediationLevel
	RC ReportConfidence
}

func (t Temporal) eWeight() float64 {
	switch t.E {
	case EUnproven:
		return 0.91
	case EProofOfConcept:
		return 0.94
	case EFunctional:
		return 0.97
	case EHigh, ENotDefined:
		return 1.0
	}
	return 1.0
}

func (t Temporal) rlWeight() float64 {
	switch t.RL {
	case RLOfficialFix:
		return 0.95
	case RLTemporaryFix:
		return 0.96
	case RLWorkaround:
		return 0.97
	case RLUnavailable, RLNotDefined:
		return 1.0
	}
	return 1.0
}

func (t Temporal) rcWeight() float64 {
	switch t.RC {
	case RCUnknown:
		return 0.92
	case RCReasonable:
		return 0.96
	case RCConfirmed, RCNotDefined:
		return 1.0
	}
	return 1.0
}

// TemporalScore computes roundup(base * E * RL * RC) per the v3.0 spec.
func (v V3) TemporalScore(t Temporal) (float64, error) {
	base, err := v.BaseScore()
	if err != nil {
		return 0, err
	}
	return roundUp1(base * t.eWeight() * t.rlWeight() * t.rcWeight()), nil
}

// String renders "E:P/RL:O/RC:C" (not-defined metrics render as X).
func (t Temporal) String() string {
	var b strings.Builder
	b.WriteString("E:" + pick(int(t.E), "X", "U", "P", "F", "H"))
	b.WriteString("/RL:" + pick(int(t.RL), "X", "O", "T", "W", "U"))
	b.WriteString("/RC:" + pick(int(t.RC), "X", "U", "R", "C"))
	return b.String()
}

// ParseTemporal parses "E:P/RL:O/RC:C" fragments; missing metrics stay
// not-defined.
func ParseTemporal(s string) (Temporal, error) {
	var t Temporal
	for _, part := range strings.Split(s, "/") {
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, ":", 2)
		if len(kv) != 2 {
			return Temporal{}, fmt.Errorf("cvss: malformed temporal metric %q", part)
		}
		switch kv[0] {
		case "E":
			switch kv[1] {
			case "X":
				t.E = ENotDefined
			case "U":
				t.E = EUnproven
			case "P":
				t.E = EProofOfConcept
			case "F":
				t.E = EFunctional
			case "H":
				t.E = EHigh
			default:
				return Temporal{}, fmt.Errorf("cvss: bad E value %q", kv[1])
			}
		case "RL":
			switch kv[1] {
			case "X":
				t.RL = RLNotDefined
			case "O":
				t.RL = RLOfficialFix
			case "T":
				t.RL = RLTemporaryFix
			case "W":
				t.RL = RLWorkaround
			case "U":
				t.RL = RLUnavailable
			default:
				return Temporal{}, fmt.Errorf("cvss: bad RL value %q", kv[1])
			}
		case "RC":
			switch kv[1] {
			case "X":
				t.RC = RCNotDefined
			case "U":
				t.RC = RCUnknown
			case "R":
				t.RC = RCReasonable
			case "C":
				t.RC = RCConfirmed
			default:
				return Temporal{}, fmt.Errorf("cvss: bad RC value %q", kv[1])
			}
		default:
			return Temporal{}, fmt.Errorf("cvss: unknown temporal metric %q", kv[0])
		}
	}
	return t, nil
}
