package cvss

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// Reference vectors with scores published by NVD / the v3.0 spec examples.
var v3Known = []struct {
	vector string
	score  float64
}{
	{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 9.8},
	{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 10.0},
	{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N", 7.5}, // Heartbleed
	{"CVSS:3.0/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 7.8}, // Dirty COW
	{"CVSS:3.0/AV:N/AC:H/PR:N/UI:R/S:U/C:L/I:N/A:N", 3.1},
	{"CVSS:3.0/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N", 0.0},
	{"CVSS:3.0/AV:P/AC:H/PR:H/UI:R/S:U/C:L/I:N/A:N", 1.6},
}

func TestV3KnownScores(t *testing.T) {
	for _, tc := range v3Known {
		v, err := ParseV3(tc.vector)
		if err != nil {
			t.Fatalf("%s: %v", tc.vector, err)
		}
		got, err := v.BaseScore()
		if err != nil {
			t.Fatalf("%s: %v", tc.vector, err)
		}
		if got != tc.score {
			t.Errorf("%s: score = %v, want %v", tc.vector, got, tc.score)
		}
	}
}

func TestParseV3Errors(t *testing.T) {
	bad := []string{
		"",                                // empty
		"AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H", // missing A
		"AV:X/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H",
		"AV:N/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", // duplicate
		"AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H/XX:Y", // unknown metric
		"AV;N",
	}
	for _, s := range bad {
		if _, err := ParseV3(s); err == nil {
			t.Errorf("ParseV3(%q) succeeded, want error", s)
		}
	}
}

func TestV3RoundTrip(t *testing.T) {
	for _, tc := range v3Known {
		v, err := ParseV3(tc.vector)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseV3(v.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", v.String(), err)
		}
		if again != v {
			t.Errorf("round trip changed vector: %v -> %v", v, again)
		}
	}
}

// randomV3 draws a uniformly random complete v3 vector.
func randomV3(r *stats.RNG) V3 {
	return V3{
		AV: AttackVector(1 + r.Intn(4)),
		AC: AttackComplexity(1 + r.Intn(2)),
		PR: PrivilegesRequired(1 + r.Intn(3)),
		UI: UserInteraction(1 + r.Intn(2)),
		S:  Scope(1 + r.Intn(2)),
		C:  Impact(1 + r.Intn(3)),
		I:  Impact(1 + r.Intn(3)),
		A:  Impact(1 + r.Intn(3)),
	}
}

func TestV3ScoreBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV3(r)
		s := v.MustBaseScore()
		if s < 0 || s > 10 {
			return false
		}
		// Scores are reported to one decimal.
		return math.Abs(s*10-math.Round(s*10)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestV3RoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV3(r)
		parsed, err := ParseV3(v.String())
		return err == nil && parsed == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Raising any impact dimension must never lower the score.
func TestV3ImpactMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		v := randomV3(r)
		base := v.MustBaseScore()
		if v.C != ImpactHigh {
			up := v
			up.C++
			if up.MustBaseScore() < base {
				return false
			}
		}
		if v.I != ImpactHigh {
			up := v
			up.I++
			if up.MustBaseScore() < base {
				return false
			}
		}
		if v.A != ImpactHigh {
			up := v
			up.A++
			if up.MustBaseScore() < base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeverityBands(t *testing.T) {
	cases := []struct {
		score float64
		want  Severity
	}{
		{0, SeverityNone},
		{0.1, SeverityLow},
		{3.9, SeverityLow},
		{4.0, SeverityMedium},
		{6.9, SeverityMedium},
		{7.0, SeverityHigh},
		{8.9, SeverityHigh},
		{9.0, SeverityCritical},
		{10, SeverityCritical},
	}
	for _, tc := range cases {
		if got := SeverityOf(tc.score); got != tc.want {
			t.Errorf("SeverityOf(%v) = %v, want %v", tc.score, got, tc.want)
		}
	}
}

func TestSeverityMonotoneInScore(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 10))
		b = math.Abs(math.Mod(b, 10))
		if a > b {
			a, b = b, a
		}
		return SeverityOf(a) <= SeverityOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeverityString(t *testing.T) {
	names := map[Severity]string{
		SeverityNone: "NONE", SeverityLow: "LOW", SeverityMedium: "MEDIUM",
		SeverityHigh: "HIGH", SeverityCritical: "CRITICAL",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Severity(99).String() != "UNKNOWN" {
		t.Error("out-of-range severity should stringify as UNKNOWN")
	}
}

func TestV3ValidateReportsMissing(t *testing.T) {
	var v V3
	if err := v.Validate(); err == nil {
		t.Fatal("zero vector validated")
	}
	v = V3{AV: AVNetwork, AC: ACLow, PR: PRNone, UI: UINone, S: ScopeUnchanged, C: ImpactHigh, I: ImpactHigh}
	if err := v.Validate(); err == nil {
		t.Fatal("vector missing A validated")
	}
	v.A = ImpactNone
	if err := v.Validate(); err != nil {
		t.Fatalf("complete vector rejected: %v", err)
	}
}

func TestMustBaseScorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBaseScore on invalid vector did not panic")
		}
	}()
	var v V3
	v.MustBaseScore()
}
