package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

// Meta slot layout (pages 0 and 1, little-endian):
//
//	u32 magic "SMDB"
//	u32 version
//	u32 pageSize
//	u64 txid
//	u64 root
//	u64 pageCount
//	u32 crc  (CRC-32/IEEE over the preceding 36 bytes)
//
// The two slots alternate by txid parity, so a torn meta write clobbers at
// most one slot and Open falls back to the other (the previous checkpoint).
const (
	metaMagic   = 0x42444D53 // "SMDB"
	metaVersion = 1
	metaLen     = 40
)

func encodeMeta(txid, root, pageCount uint64) []byte {
	p := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(p[0:], metaMagic)
	binary.LittleEndian.PutUint32(p[4:], metaVersion)
	binary.LittleEndian.PutUint32(p[8:], pageSize)
	binary.LittleEndian.PutUint64(p[12:], txid)
	binary.LittleEndian.PutUint64(p[20:], root)
	binary.LittleEndian.PutUint64(p[28:], pageCount)
	binary.LittleEndian.PutUint32(p[36:], crc32.ChecksumIEEE(p[:36]))
	return p
}

func decodeMeta(p []byte) (txid, root, pageCount uint64, ok bool) {
	if len(p) < metaLen ||
		binary.LittleEndian.Uint32(p[0:]) != metaMagic ||
		binary.LittleEndian.Uint32(p[4:]) != metaVersion ||
		binary.LittleEndian.Uint32(p[8:]) != pageSize ||
		binary.LittleEndian.Uint32(p[36:]) != crc32.ChecksumIEEE(p[:36]) {
		return 0, 0, 0, false
	}
	return binary.LittleEndian.Uint64(p[12:]),
		binary.LittleEndian.Uint64(p[20:]),
		binary.LittleEndian.Uint64(p[28:]),
		true
}

// DB is an open database. Safe for concurrent use: any number of Snapshot
// readers, one write transaction at a time (Begin blocks until the writer
// slot frees).
type DB struct {
	path string
	opts Options
	file *os.File
	wal  *wal

	// writer is the single-writer slot, held from Begin to Commit/Rollback.
	writer sync.Mutex

	mu        sync.Mutex // guards all fields below
	closed    bool
	failed    bool
	root      uint64
	txid      uint64
	pageCount uint64
	// cache holds immutable sealed page images. dirty marks pages that
	// live only in the WAL (not yet checkpointed); they are pinned — only
	// clean pages are evicted, which is what makes reader preads on cache
	// misses safe against concurrent checkpoint writes.
	cache map[uint64][]byte
	dirty map[uint64]struct{}
	fl    *freelist
	snaps map[*Snapshot]struct{}

	commits     uint64
	checkpoints uint64
}

// Open opens or creates the database at path (the WAL lives at path+"-wal"),
// running crash recovery: replay the WAL's committed suffix, truncate the
// torn tail, checkpoint, and rebuild the freelist by reachability.
func Open(path string, opts Options) (*DB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	db := &DB{
		path:  path,
		opts:  opts,
		file:  f,
		cache: make(map[uint64][]byte),
		dirty: make(map[uint64]struct{}),
		fl:    newFreelist(),
		snaps: make(map[*Snapshot]struct{}),
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case fi.Size() == 0:
		// Fresh database: both meta slots describe the empty tree.
		db.pageCount = firstDataPage
		for slot := int64(0); slot < 2; slot++ {
			if _, err := f.WriteAt(encodeMeta(0, 0, firstDataPage), slot*pageSize); err != nil {
				f.Close()
				return nil, err
			}
		}
		if !opts.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
	case fi.Size() < 2*pageSize:
		f.Close()
		return nil, fmt.Errorf("%w: file smaller than the meta slots", ErrCorrupt)
	default:
		buf := make([]byte, 2*pageSize)
		if _, err := f.ReadAt(buf, 0); err != nil {
			f.Close()
			return nil, err
		}
		found := false
		for slot := 0; slot < 2; slot++ {
			txid, root, pc, ok := decodeMeta(buf[slot*pageSize:])
			if ok && (!found || txid > db.txid) {
				db.txid, db.root, db.pageCount = txid, root, pc
				found = true
			}
		}
		if !found {
			f.Close()
			return nil, fmt.Errorf("%w: neither meta slot is valid", ErrCorrupt)
		}
	}

	db.wal, err = openWAL(path+"-wal", opts.CrashWALBytes, opts.NoSync)
	if err != nil {
		f.Close()
		return nil, err
	}

	// Recovery: apply every intact WAL record newer than the checkpointed
	// meta, then cut the torn tail. Records at or below meta.txid are from
	// a checkpoint that crashed after writing meta but before truncating
	// the log — already durable in the page file, so skipped.
	replayed := 0
	truncAt, err := replayWAL(db.wal.f, func(c walCommit) error {
		if c.txid <= db.txid {
			return nil
		}
		for pgid, img := range c.pages {
			db.cache[pgid] = img
			db.dirty[pgid] = struct{}{}
		}
		db.txid, db.root, db.pageCount = c.txid, c.root, c.pageCount
		replayed++
		return nil
	})
	if err != nil {
		db.wal.close()
		f.Close()
		return nil, err
	}
	if truncAt < db.wal.size.Load() {
		if err := db.wal.truncate(truncAt); err != nil {
			db.wal.close()
			f.Close()
			return nil, err
		}
	}
	if replayed > 0 || db.wal.size.Load() > 0 {
		if err := db.checkpoint(); err != nil {
			db.wal.close()
			f.Close()
			return nil, err
		}
	}

	if err := db.rebuildFreelist(); err != nil {
		db.wal.close()
		f.Close()
		return nil, err
	}
	return db, nil
}

// rebuildFreelist computes the free set as the complement of a reachability
// walk from the committed root (including overflow chains).
func (db *DB) rebuildFreelist() error {
	reachable := make(map[uint64]bool)
	var walk func(pgid uint64) error
	walk = func(pgid uint64) error {
		if reachable[pgid] {
			return fmt.Errorf("%w: page %d reachable twice", ErrCorrupt, pgid)
		}
		reachable[pgid] = true
		p, err := db.readPage(pgid)
		if err != nil {
			return err
		}
		n, err := decodeNode(p, pgid)
		if err != nil {
			return err
		}
		if n.leaf {
			for i := range n.keys {
				if n.ovf[i] == 0 {
					continue
				}
				ids, err := overflowChain(n.ovf[i], db.readPage)
				if err != nil {
					return err
				}
				for _, id := range ids {
					if reachable[id] {
						return fmt.Errorf("%w: overflow page %d reachable twice", ErrCorrupt, id)
					}
					reachable[id] = true
				}
			}
			return nil
		}
		for _, child := range n.children {
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if db.root != 0 {
		if err := walk(db.root); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for pgid := uint64(firstDataPage); pgid < db.pageCount; pgid++ {
		if !reachable[pgid] {
			db.fl.free = append(db.fl.free, pgid)
		}
	}
	return nil
}

// readPage returns the immutable sealed image of a committed page, from
// cache or the page file (checksum-verified). Safe concurrently.
func (db *DB) readPage(pgid uint64) ([]byte, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := db.cache[pgid]; ok {
		db.mu.Unlock()
		return p, nil
	}
	db.mu.Unlock()
	buf := make([]byte, pageSize)
	if _, err := db.file.ReadAt(buf, int64(pgid)*pageSize); err != nil {
		return nil, fmt.Errorf("store: read page %d: %w", pgid, err)
	}
	if err := checkPage(buf, pgid); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.cache[pgid] = buf
	db.evictLocked()
	db.mu.Unlock()
	return buf, nil
}

// evictLocked drops clean pages while the cache exceeds its bound. Dirty
// pages (WAL-only) are pinned until checkpointed. Called with mu held.
func (db *DB) evictLocked() {
	limit := db.opts.cachePages()
	if len(db.cache) <= limit {
		return
	}
	for pgid := range db.cache {
		if _, isDirty := db.dirty[pgid]; isDirty {
			continue
		}
		delete(db.cache, pgid)
		if len(db.cache) <= limit {
			return
		}
	}
}

// minActiveLocked is the oldest txid any live snapshot observes (the
// current txid when none are open). Called with mu held.
func (db *DB) minActiveLocked() uint64 {
	min := db.txid
	for s := range db.snaps {
		if s.txid < min {
			min = s.txid
		}
	}
	return min
}

// failLocked marks the database sticky-failed. Called with mu held.
func (db *DB) failLocked() { db.failed = true }

// checkpoint migrates WAL-resident pages into the page file and resets the
// log. Sequence: sync WAL → write dirty pages → fsync page file → write
// meta → fsync → truncate WAL. A crash at any point is safe: until the new
// meta is durable, recovery replays the old meta plus the (fully synced)
// WAL, which contains exactly the pages being written here.
//
// Callers must hold the writer slot (or otherwise exclude writers); mu must
// NOT be held.
func (db *DB) checkpoint() error {
	if err := db.wal.syncTo(db.wal.size.Load()); err != nil {
		return err
	}
	db.mu.Lock()
	pgids := make([]uint64, 0, len(db.dirty))
	for pgid := range db.dirty {
		pgids = append(pgids, pgid)
	}
	sort.Slice(pgids, func(i, j int) bool { return pgids[i] < pgids[j] })
	pages := make([][]byte, len(pgids))
	for i, pgid := range pgids {
		pages[i] = db.cache[pgid]
	}
	txid, root, pageCount := db.txid, db.root, db.pageCount
	db.mu.Unlock()

	for i, pgid := range pgids {
		if _, err := db.file.WriteAt(pages[i], int64(pgid)*pageSize); err != nil {
			return fmt.Errorf("store: checkpoint write page %d: %w", pgid, err)
		}
	}
	if !db.opts.NoSync {
		if err := db.file.Sync(); err != nil {
			return fmt.Errorf("store: checkpoint sync: %w", err)
		}
	}
	slot := int64(txid % 2)
	if _, err := db.file.WriteAt(encodeMeta(txid, root, pageCount), slot*pageSize); err != nil {
		return fmt.Errorf("store: checkpoint meta: %w", err)
	}
	if !db.opts.NoSync {
		if err := db.file.Sync(); err != nil {
			return fmt.Errorf("store: checkpoint meta sync: %w", err)
		}
	}
	if err := db.wal.truncate(0); err != nil {
		return fmt.Errorf("store: checkpoint wal reset: %w", err)
	}
	db.mu.Lock()
	for _, pgid := range pgids {
		delete(db.dirty, pgid)
	}
	db.checkpoints++
	db.evictLocked()
	db.mu.Unlock()
	return nil
}

// Begin starts the write transaction, blocking while another is active.
func (db *DB) Begin() (*Tx, error) {
	db.writer.Lock()
	db.mu.Lock()
	if db.closed || db.failed {
		err := ErrClosed
		if db.failed && !db.closed {
			err = ErrFailed
		}
		db.mu.Unlock()
		db.writer.Unlock()
		return nil, err
	}
	tx := &Tx{
		db:        db,
		root:      db.root,
		pageCount: db.pageCount,
		nodes:     make(map[uint64]*node),
		raw:       make(map[uint64][]byte),
	}
	db.mu.Unlock()
	return tx, nil
}

// Update runs fn inside a write transaction, committing on nil and rolling
// back on error.
func (db *DB) Update(fn func(*Tx) error) error {
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Snapshot pins the current committed tree for reading. Release it.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	s := &Snapshot{db: db, root: db.root, txid: db.txid}
	db.snaps[s] = struct{}{}
	return s, nil
}

// View runs fn over a snapshot, releasing it afterwards.
func (db *DB) View(fn func(*Snapshot) error) error {
	s, err := db.Snapshot()
	if err != nil {
		return err
	}
	defer s.Release()
	return fn(s)
}

// Stats reports a point-in-time account of the engine.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	return Stats{
		TxID:            db.txid,
		Commits:         db.commits,
		Checkpoints:     db.checkpoints,
		PageCount:       db.pageCount,
		FreePages:       len(db.fl.free),
		PendingPages:    db.fl.pendingCount(),
		CachedPages:     len(db.cache),
		WALBytes:        db.wal.size.Load(),
		ActiveSnapshots: len(db.snaps),
	}
}

// Close checkpoints (unless failed) and releases the files. Concurrent
// operations finish or fail with ErrClosed.
func (db *DB) Close() error {
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	failed := db.failed
	dirtyCount := len(db.dirty)
	db.mu.Unlock()
	var ckErr error
	if !failed && dirtyCount > 0 {
		ckErr = db.checkpoint()
	}
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	if err := db.wal.close(); ckErr == nil {
		ckErr = err
	}
	if err := db.file.Close(); ckErr == nil {
		ckErr = err
	}
	return ckErr
}

// Abandon drops the file handles without checkpointing or syncing —
// simulating a process kill. Only the WAL and page file contents already
// durable survive, exactly as after a real crash. Tests and the crash
// smoke use it; production code calls Close.
func (db *DB) Abandon() error {
	db.mu.Lock()
	db.closed = true
	db.failed = true
	db.mu.Unlock()
	err := db.wal.close()
	if err2 := db.file.Close(); err == nil {
		err = err2
	}
	return err
}

// Path returns the page-file path the database was opened with.
func (db *DB) Path() string { return db.path }
