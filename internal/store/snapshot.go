package store

import "sync/atomic"

// Snapshot is a frozen read-only view of the tree as of one commit. It
// pins every page that commit could reach: the freelist will not recycle
// pages freed by later commits until this snapshot is Released, so reads
// stay byte-stable no matter how many commits land concurrently.
//
// Snapshots are safe for concurrent use by multiple goroutines.
type Snapshot struct {
	db       *DB
	root     uint64
	txid     uint64
	released atomic.Bool
}

// TxID is the commit this snapshot observes.
func (s *Snapshot) TxID() uint64 { return s.txid }

func (s *Snapshot) readNode(pgid uint64) (*node, error) {
	p, err := s.db.readPage(pgid)
	if err != nil {
		return nil, err
	}
	return decodeNode(p, pgid)
}

func (s *Snapshot) readRaw(pgid uint64) ([]byte, error) {
	return s.db.readPage(pgid)
}

// Get reads key from the pinned tree. The returned slice must not be
// modified.
func (s *Snapshot) Get(key []byte) ([]byte, bool, error) {
	if s.released.Load() {
		return nil, false, ErrReleased
	}
	if err := validateKey(key); err != nil {
		return nil, false, err
	}
	return lookupKey(s, s.root, key)
}

// Scan iterates keys in [start, end) in order (nil start/end = unbounded).
// fn returning false stops early. Yielded slices must not be modified.
func (s *Snapshot) Scan(start, end []byte, fn func(key, val []byte) (bool, error)) error {
	if s.released.Load() {
		return ErrReleased
	}
	return scanTree(s, s.root, start, end, fn)
}

// Release unpins the snapshot, allowing the freelist to recycle pages only
// this snapshot still held. Idempotent.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	db := s.db
	db.mu.Lock()
	delete(db.snaps, s)
	if !db.closed {
		db.fl.promote(db.minActiveLocked())
	}
	db.mu.Unlock()
}
