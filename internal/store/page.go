package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Page flags.
const (
	flagLeaf     = 1
	flagBranch   = 2
	flagOverflow = 4
)

// Page header field offsets. The CRC covers bytes [0,16) plus the payload
// [pageHeaderSize, pageSize), i.e. everything except the CRC field itself,
// so a torn write anywhere in the page is detected.
const (
	offFlags   = 0
	offCount   = 2
	offDataLen = 4
	offNext    = 8
	offCRC     = 16
)

// payloadSize is the usable bytes per page after the header.
const payloadSize = pageSize - pageHeaderSize

// pageCRC computes the integrity checksum of an encoded page.
func pageCRC(p []byte) uint32 {
	c := crc32.ChecksumIEEE(p[:offCRC])
	return crc32.Update(c, crc32.IEEETable, p[pageHeaderSize:])
}

// sealPage stamps the CRC of a fully encoded page.
func sealPage(p []byte) {
	binary.LittleEndian.PutUint32(p[offCRC:], pageCRC(p))
}

// checkPage validates a page's checksum before any field is trusted.
func checkPage(p []byte, pgid uint64) error {
	if len(p) != pageSize {
		return fmt.Errorf("%w: page %d has %d bytes", ErrCorrupt, pgid, len(p))
	}
	if got, want := binary.LittleEndian.Uint32(p[offCRC:]), pageCRC(p); got != want {
		return fmt.Errorf("%w: page %d checksum mismatch", ErrCorrupt, pgid)
	}
	return nil
}

// newPage allocates a zeroed page buffer with flags set.
func newPage(flags uint16) []byte {
	p := make([]byte, pageSize)
	binary.LittleEndian.PutUint16(p[offFlags:], flags)
	return p
}

func pageFlags(p []byte) uint16   { return binary.LittleEndian.Uint16(p[offFlags:]) }
func pageCount16(p []byte) uint16 { return binary.LittleEndian.Uint16(p[offCount:]) }
func pageDataLen(p []byte) uint32 { return binary.LittleEndian.Uint32(p[offDataLen:]) }
func pageNext(p []byte) uint64    { return binary.LittleEndian.Uint64(p[offNext:]) }

// encodeOverflow chunks a long value into a chain of overflow pages using
// the given allocator, returning the head page id. Each page's dataLen is
// the bytes it carries; next links the chain.
func encodeOverflow(val []byte, alloc func() uint64, emit func(pgid uint64, page []byte)) uint64 {
	n := len(val)
	npages := (n + payloadSize - 1) / payloadSize
	ids := make([]uint64, npages)
	for i := range ids {
		ids[i] = alloc()
	}
	off := 0
	for i := 0; i < npages; i++ {
		p := newPage(flagOverflow)
		chunk := val[off:min(off+payloadSize, n)]
		binary.LittleEndian.PutUint32(p[offDataLen:], uint32(len(chunk)))
		if i+1 < npages {
			binary.LittleEndian.PutUint64(p[offNext:], ids[i+1])
		}
		copy(p[pageHeaderSize:], chunk)
		sealPage(p)
		emit(ids[i], p)
		off += len(chunk)
	}
	return ids[0]
}

// readOverflow reassembles a value of total length vlen from the chain at
// head, reading pages through read. It validates chain structure and total
// length so a damaged chain surfaces as ErrCorrupt, never a short value.
func readOverflow(head uint64, vlen int, read func(pgid uint64) ([]byte, error)) ([]byte, error) {
	out := make([]byte, 0, vlen)
	pgid := head
	for pgid != 0 {
		p, err := read(pgid)
		if err != nil {
			return nil, err
		}
		if pageFlags(p) != flagOverflow {
			return nil, fmt.Errorf("%w: page %d is not an overflow page", ErrCorrupt, pgid)
		}
		n := int(pageDataLen(p))
		if n > payloadSize || len(out)+n > vlen {
			return nil, fmt.Errorf("%w: overflow chain at %d overruns its declared length", ErrCorrupt, head)
		}
		out = append(out, p[pageHeaderSize:pageHeaderSize+n]...)
		pgid = pageNext(p)
	}
	if len(out) != vlen {
		return nil, fmt.Errorf("%w: overflow chain at %d is short (%d of %d bytes)", ErrCorrupt, head, len(out), vlen)
	}
	return out, nil
}

// overflowChain lists the page ids of a chain (for freeing).
func overflowChain(head uint64, read func(pgid uint64) ([]byte, error)) ([]uint64, error) {
	var ids []uint64
	pgid := head
	for pgid != 0 {
		ids = append(ids, pgid)
		p, err := read(pgid)
		if err != nil {
			return nil, err
		}
		if pageFlags(p) != flagOverflow {
			return nil, fmt.Errorf("%w: page %d is not an overflow page", ErrCorrupt, pgid)
		}
		pgid = pageNext(p)
		if len(ids) > 1<<20 {
			return nil, fmt.Errorf("%w: overflow chain at %d does not terminate", ErrCorrupt, head)
		}
	}
	return ids, nil
}
