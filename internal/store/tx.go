package store

import (
	"fmt"
	"sort"
)

// Tx is the single write transaction. It builds a new tree copy-on-write:
// every node on a mutated path is re-created under a fresh page id, the old
// ids are queued for the freelist, and nothing shared is touched until
// Commit installs the new root atomically. A Tx also reads: Get and Scan
// observe its own uncommitted writes.
//
// A Tx is not safe for concurrent use. It must end in exactly one Commit
// or Rollback; holding it open blocks every other writer.
type Tx struct {
	db        *DB
	done      bool
	root      uint64
	pageCount uint64

	// nodes and raw hold the pages this transaction created: decoded
	// B+tree nodes and sealed overflow pages respectively.
	nodes map[uint64]*node
	raw   map[uint64][]byte
	// freed lists committed pages this tx superseded (they join the
	// freelist's pending set at commit). recycled lists tx-local pages
	// freed before ever committing — immediately reusable. allocFromFree
	// records freelist pops, so Rollback can return them.
	freed         []uint64
	recycled      []uint64
	allocFromFree []uint64
}

type splitResult struct {
	pgid uint64
	key  []byte
}

// alloc returns a page id for a new page: tx-recycled first, then the
// shared freelist, then file growth.
func (tx *Tx) alloc() uint64 {
	if n := len(tx.recycled); n > 0 {
		id := tx.recycled[n-1]
		tx.recycled = tx.recycled[:n-1]
		return id
	}
	tx.db.mu.Lock()
	id := tx.db.fl.allocate()
	tx.db.mu.Unlock()
	if id != 0 {
		tx.allocFromFree = append(tx.allocFromFree, id)
		return id
	}
	id = tx.pageCount
	tx.pageCount++
	return id
}

// freePage retires a page id. Tx-local pages (never committed) are
// recycled immediately; committed pages wait out active snapshots.
func (tx *Tx) freePage(pgid uint64) {
	if _, ok := tx.nodes[pgid]; ok {
		delete(tx.nodes, pgid)
		tx.recycled = append(tx.recycled, pgid)
		return
	}
	if _, ok := tx.raw[pgid]; ok {
		delete(tx.raw, pgid)
		tx.recycled = append(tx.recycled, pgid)
		return
	}
	tx.freed = append(tx.freed, pgid)
}

// freeChain retires a whole overflow chain.
func (tx *Tx) freeChain(head uint64) error {
	ids, err := overflowChain(head, tx.readRaw)
	if err != nil {
		return err
	}
	for _, id := range ids {
		tx.freePage(id)
	}
	return nil
}

// readNode implements treeReader over the tx's view: its own nodes shadow
// committed pages.
func (tx *Tx) readNode(pgid uint64) (*node, error) {
	if n, ok := tx.nodes[pgid]; ok {
		return n, nil
	}
	p, err := tx.db.readPage(pgid)
	if err != nil {
		return nil, err
	}
	return decodeNode(p, pgid)
}

func (tx *Tx) readRaw(pgid uint64) ([]byte, error) {
	if p, ok := tx.raw[pgid]; ok {
		return p, nil
	}
	return tx.db.readPage(pgid)
}

// touch makes pgid writable: a tx-local node is returned as-is; a committed
// node is copied to a fresh id (copy-on-write) and the old id freed.
func (tx *Tx) touch(pgid uint64) (uint64, *node, error) {
	if n, ok := tx.nodes[pgid]; ok {
		return pgid, n, nil
	}
	p, err := tx.db.readPage(pgid)
	if err != nil {
		return 0, nil, err
	}
	n, err := decodeNode(p, pgid)
	if err != nil {
		return 0, nil, err
	}
	id := tx.alloc()
	tx.nodes[id] = n
	tx.freed = append(tx.freed, pgid)
	return id, n, nil
}

// Get reads key through the transaction's own uncommitted view.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) {
	if tx.done {
		return nil, false, ErrTxDone
	}
	if err := validateKey(key); err != nil {
		return nil, false, err
	}
	return lookupKey(tx, tx.root, key)
}

// Scan iterates [start, end) through the transaction's uncommitted view.
func (tx *Tx) Scan(start, end []byte, fn func(key, val []byte) (bool, error)) error {
	if tx.done {
		return ErrTxDone
	}
	return scanTree(tx, tx.root, start, end, fn)
}

// Put inserts or replaces key. Values above the inline bound spill to an
// overflow chain. key and val are copied; the caller keeps ownership.
func (tx *Tx) Put(key, val []byte) error {
	if tx.done {
		return ErrTxDone
	}
	if err := validateKey(key); err != nil {
		return err
	}
	k := append([]byte(nil), key...)
	vlen := uint32(len(val))
	var inline []byte
	var ovf uint64
	if len(val) > maxInlineValue {
		v := append([]byte(nil), val...)
		ovf = encodeOverflow(v, tx.alloc, func(pgid uint64, page []byte) { tx.raw[pgid] = page })
	} else {
		inline = append([]byte(nil), val...)
	}
	if tx.root == 0 {
		n := &node{leaf: true}
		n.insertLeafCell(0, k, inline, ovf, vlen)
		id := tx.alloc()
		tx.nodes[id] = n
		tx.root = id
		return nil
	}
	newRoot, firstKey, sp, err := tx.insert(tx.root, k, inline, ovf, vlen)
	if err != nil {
		return err
	}
	tx.root = newRoot
	if sp != nil {
		// Root split: grow the tree by one level.
		r := &node{
			keys:     [][]byte{firstKey, sp.key},
			children: []uint64{newRoot, sp.pgid},
		}
		id := tx.alloc()
		tx.nodes[id] = r
		tx.root = id
	}
	return nil
}

// insert descends to the leaf, copy-on-writing the path. It returns the
// subtree's new page id, its (possibly changed) smallest key, and a split
// descriptor when the node had to shed a right sibling.
func (tx *Tx) insert(pgid uint64, key, val []byte, ovf uint64, vlen uint32) (uint64, []byte, *splitResult, error) {
	id, n, err := tx.touch(pgid)
	if err != nil {
		return 0, nil, nil, err
	}
	if n.leaf {
		i, found := n.search(key)
		if found {
			if n.ovf[i] != 0 {
				if err := tx.freeChain(n.ovf[i]); err != nil {
					return 0, nil, nil, err
				}
			}
			n.keys[i], n.vals[i], n.ovf[i], n.vlen[i] = key, val, ovf, vlen
		} else {
			n.insertLeafCell(i, key, val, ovf, vlen)
		}
	} else {
		if len(n.children) == 0 {
			return 0, nil, nil, fmt.Errorf("%w: empty branch page %d", ErrCorrupt, pgid)
		}
		ci := n.childIndex(key)
		childID, childFirst, sp, err := tx.insert(n.children[ci], key, val, ovf, vlen)
		if err != nil {
			return 0, nil, nil, err
		}
		n.children[ci] = childID
		n.keys[ci] = childFirst
		if sp != nil {
			n.insertBranchCell(ci+1, sp.key, sp.pgid)
		}
	}
	if n.size() > pageSize {
		right := n.split()
		rid := tx.alloc()
		tx.nodes[rid] = right
		return id, n.keys[0], &splitResult{pgid: rid, key: right.keys[0]}, nil
	}
	return id, n.keys[0], nil, nil
}

// Delete removes key, reporting whether it was present. Empty pages are
// dropped and a single-child root is collapsed; there is no rebalancing —
// sparse pages persist until neighboring churn merges them away, a
// deliberate simplicity trade documented in DESIGN.md.
func (tx *Tx) Delete(key []byte) (bool, error) {
	if tx.done {
		return false, ErrTxDone
	}
	if err := validateKey(key); err != nil {
		return false, err
	}
	if tx.root == 0 {
		return false, nil
	}
	newRoot, _, found, empty, err := tx.remove(tx.root, key)
	if err != nil || !found {
		return false, err
	}
	if empty {
		tx.root = 0
		return true, nil
	}
	tx.root = newRoot
	for {
		n, err := tx.readNode(tx.root)
		if err != nil {
			return false, err
		}
		if n.leaf || len(n.children) != 1 {
			break
		}
		old := tx.root
		tx.root = n.children[0]
		tx.freePage(old)
	}
	return true, nil
}

// remove is the delete recursion: (new pgid, new smallest key, key found,
// subtree now empty, error). Nothing is copy-on-written unless the key is
// actually present in the subtree.
func (tx *Tx) remove(pgid uint64, key []byte) (uint64, []byte, bool, bool, error) {
	n0, err := tx.readNode(pgid)
	if err != nil {
		return 0, nil, false, false, err
	}
	if n0.leaf {
		i, found := n0.search(key)
		if !found {
			return pgid, nil, false, false, nil
		}
		id, n, err := tx.touch(pgid)
		if err != nil {
			return 0, nil, false, false, err
		}
		if n.ovf[i] != 0 {
			if err := tx.freeChain(n.ovf[i]); err != nil {
				return 0, nil, false, false, err
			}
		}
		n.removeLeafCell(i)
		if len(n.keys) == 0 {
			tx.freePage(id)
			return 0, nil, true, true, nil
		}
		return id, n.keys[0], true, false, nil
	}
	if len(n0.children) == 0 {
		return 0, nil, false, false, fmt.Errorf("%w: empty branch page %d", ErrCorrupt, pgid)
	}
	ci := n0.childIndex(key)
	childID, childFirst, found, empty, err := tx.remove(n0.children[ci], key)
	if err != nil || !found {
		return pgid, nil, found, false, err
	}
	id, n, err := tx.touch(pgid)
	if err != nil {
		return 0, nil, false, false, err
	}
	if empty {
		n.removeBranchCell(ci)
		if len(n.keys) == 0 {
			tx.freePage(id)
			return 0, nil, true, true, nil
		}
	} else {
		n.children[ci] = childID
		n.keys[ci] = childFirst
	}
	return id, n.keys[0], true, false, nil
}

// Commit logs the transaction (one WAL record with every new page image),
// installs the new root for readers, and returns once the record is
// durable. Durability piggybacks on concurrent committers' fsyncs (group
// commit); visibility precedes durability by design — a commit another
// reader observed can still be lost if the process dies before Commit
// returns, but a Commit that returned nil never is.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	db := tx.db

	if len(tx.nodes) == 0 && len(tx.raw) == 0 && len(tx.freed) == 0 {
		// Read-only or fully self-cancelling tx: nothing to log.
		if len(tx.allocFromFree) > 0 {
			db.mu.Lock()
			db.fl.free = append(db.fl.free, tx.allocFromFree...)
			sort.Slice(db.fl.free, func(i, j int) bool { return db.fl.free[i] < db.fl.free[j] })
			db.mu.Unlock()
		}
		db.writer.Unlock()
		return nil
	}

	pages := make(map[uint64][]byte, len(tx.nodes)+len(tx.raw))
	pgids := make([]uint64, 0, len(pages))
	for id, n := range tx.nodes {
		pages[id] = n.encode()
		pgids = append(pgids, id)
	}
	for id, p := range tx.raw {
		pages[id] = p
		pgids = append(pgids, id)
	}
	sort.Slice(pgids, func(i, j int) bool { return pgids[i] < pgids[j] })

	db.mu.Lock()
	txid := db.txid + 1
	db.mu.Unlock()
	rec := encodeRecord(txid, tx.root, tx.pageCount, pgids, pages)
	end, err := db.wal.append(rec)
	if err != nil {
		db.mu.Lock()
		db.failLocked()
		db.mu.Unlock()
		db.writer.Unlock()
		return err
	}

	db.mu.Lock()
	for id, p := range pages {
		db.cache[id] = p
		db.dirty[id] = struct{}{}
	}
	db.root, db.txid, db.pageCount = tx.root, txid, tx.pageCount
	db.fl.release(txid, tx.freed)
	if len(tx.recycled) > 0 {
		// Allocated and discarded within this tx: no snapshot ever saw
		// them, straight back to the free set.
		db.fl.free = append(db.fl.free, tx.recycled...)
		sort.Slice(db.fl.free, func(i, j int) bool { return db.fl.free[i] < db.fl.free[j] })
	}
	db.fl.promote(db.minActiveLocked())
	db.commits++
	db.evictLocked()
	needCkpt := db.wal.size.Load() >= db.opts.checkpointBytes()
	db.mu.Unlock()

	if needCkpt {
		// Checkpoint under the writer slot so no commit races the page
		// file rewrite; it syncs the WAL first, which also makes this
		// commit durable.
		if err := db.checkpoint(); err != nil {
			db.mu.Lock()
			db.failLocked()
			db.mu.Unlock()
			db.writer.Unlock()
			return err
		}
		db.writer.Unlock()
		return nil
	}
	// Release the writer before fsync so the next writer overlaps its work
	// with our disk flush — its own syncTo may then cover both (group
	// commit).
	db.writer.Unlock()
	if err := db.wal.syncTo(end); err != nil {
		db.mu.Lock()
		db.failLocked()
		db.mu.Unlock()
		return err
	}
	return nil
}

// Rollback abandons the transaction, returning any freelist pages it
// borrowed. Idempotent after Commit or a prior Rollback.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	db := tx.db
	if len(tx.allocFromFree) > 0 {
		db.mu.Lock()
		db.fl.free = append(db.fl.free, tx.allocFromFree...)
		sort.Slice(db.fl.free, func(i, j int) bool { return db.fl.free[i] < db.fl.free[j] })
		db.mu.Unlock()
	}
	db.writer.Unlock()
	return nil
}
