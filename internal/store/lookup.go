package store

import (
	"bytes"
	"fmt"
)

// treeReader abstracts page access so the same lookup and scan code serves
// both committed snapshots and the in-flight write transaction (which must
// see its own uncommitted nodes).
type treeReader interface {
	readNode(pgid uint64) (*node, error)
	readRaw(pgid uint64) ([]byte, error)
}

func validateKey(key []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if len(key) > maxKey {
		return ErrKeyTooLarge
	}
	return nil
}

// leafValue materializes the value of leaf cell i, following the overflow
// chain when the value is not inline. The returned slice must not be
// modified by the caller.
func leafValue(r treeReader, n *node, i int) ([]byte, error) {
	if n.ovf[i] == 0 {
		return n.vals[i], nil
	}
	return readOverflow(n.ovf[i], int(n.vlen[i]), r.readRaw)
}

// lookupKey walks root-to-leaf for key.
func lookupKey(r treeReader, root uint64, key []byte) ([]byte, bool, error) {
	if root == 0 {
		return nil, false, nil
	}
	pgid := root
	for depth := 0; ; depth++ {
		if depth > 64 {
			return nil, false, fmt.Errorf("%w: tree deeper than 64 levels", ErrCorrupt)
		}
		n, err := r.readNode(pgid)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i, found := n.search(key)
			if !found {
				return nil, false, nil
			}
			v, err := leafValue(r, n, i)
			return v, err == nil, err
		}
		if len(n.children) == 0 {
			return nil, false, fmt.Errorf("%w: empty branch page %d", ErrCorrupt, pgid)
		}
		pgid = n.children[n.childIndex(key)]
	}
}

// scanTree walks keys in [start, end) in order (nil start = from the
// beginning, nil end = to the end), invoking fn per pair. fn returning
// false stops the scan early; its error aborts with that error.
func scanTree(r treeReader, root uint64, start, end []byte, fn func(key, val []byte) (bool, error)) error {
	if root == 0 {
		return nil
	}
	var walk func(pgid uint64, depth int) (bool, error)
	walk = func(pgid uint64, depth int) (bool, error) {
		if depth > 64 {
			return false, fmt.Errorf("%w: tree deeper than 64 levels", ErrCorrupt)
		}
		n, err := r.readNode(pgid)
		if err != nil {
			return false, err
		}
		if n.leaf {
			for i := range n.keys {
				if start != nil && bytes.Compare(n.keys[i], start) < 0 {
					continue
				}
				if end != nil && bytes.Compare(n.keys[i], end) >= 0 {
					return false, nil
				}
				v, err := leafValue(r, n, i)
				if err != nil {
					return false, err
				}
				cont, err := fn(n.keys[i], v)
				if err != nil || !cont {
					return false, err
				}
			}
			return true, nil
		}
		if len(n.children) == 0 {
			return false, fmt.Errorf("%w: empty branch page %d", ErrCorrupt, pgid)
		}
		i := 0
		if start != nil {
			i = n.childIndex(start)
		}
		for ; i < len(n.children); i++ {
			// keys[i] is the smallest key of child i: once it reaches end,
			// no later child holds in-range keys.
			if end != nil && bytes.Compare(n.keys[i], end) >= 0 {
				return false, nil
			}
			cont, err := walk(n.children[i], depth+1)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	}
	_, err := walk(root, 0)
	return err
}
