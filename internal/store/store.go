// Package store is the embedded storage engine behind the findings
// time-series: a copy-on-write B+tree over fixed-size pages, a write-ahead
// log with group commit and crash recovery, and MVCC snapshot reads, in one
// self-contained package with no dependencies beyond the standard library
// and the shared durable-write helper.
//
// The design in one paragraph: all durable state lives in two files, the
// page file (<path>, fixed 4 KiB pages: two alternating meta slots, then
// data pages) and the write-ahead log (<path>-wal). A write transaction
// never modifies a committed page — it copies every node on the root-to-leaf
// path to freshly allocated pages (copy-on-write), so the previous root
// keeps describing a complete, immutable tree. Commit appends one record
// carrying the full images of the transaction's new pages to the WAL and
// fsyncs it (concurrent committers share fsyncs — group commit); the page
// file is only rewritten at checkpoint, after which the WAL is truncated.
// Readers open snapshots: a snapshot pins the root (and, via the freelist's
// pending lists, every page) of the commit it observed, so scans see a
// frozen tree while the single writer keeps committing. Crash recovery
// replays the WAL's committed suffix (every record protected by a CRC over
// its entire contents) and truncates the torn tail; pages freed by later
// commits are rediscovered by a reachability walk, so the freelist needs no
// durable format of its own.
//
// Concurrency contract: any number of concurrent Snapshot readers, one
// writer at a time (Begin blocks). Snapshots must be Released; an
// unreleased snapshot pins its pages forever (the freelist cannot recycle
// them).
package store

import "errors"

// Fixed geometry. Changing pageSize invalidates every existing database.
const (
	pageSize = 4096

	// pageHeaderSize is the encoded page header: flags u16, count u16,
	// dataLen u32, next u64, crc u32.
	pageHeaderSize = 20

	// maxKey bounds key length so a branch page always fits several
	// separators; callers of Put get a typed error beyond it.
	maxKey = 512

	// maxInlineValue is the largest value stored inside a leaf cell;
	// larger values spill to an overflow page chain.
	maxInlineValue = 1024

	// firstDataPage: pages 0 and 1 are the alternating meta slots.
	firstDataPage = 2
)

// Typed failures callers branch on with errors.Is.
var (
	// ErrCorrupt marks a page, meta slot, or WAL record whose checksum or
	// structure is invalid. Open returns it when neither meta slot is
	// usable; reads return it instead of ever serving a torn page.
	ErrCorrupt = errors.New("store: corrupt or torn data")
	// ErrKeyTooLarge rejects keys longer than the 512-byte bound.
	ErrKeyTooLarge = errors.New("store: key exceeds maximum length")
	// ErrEmptyKey rejects zero-length keys (reserved as a scan sentinel).
	ErrEmptyKey = errors.New("store: empty key")
	// ErrClosed is returned by every operation after Close.
	ErrClosed = errors.New("store: database is closed")
	// ErrFailed marks a database that hit an I/O (or injected) failure
	// mid-commit; the in-memory state can no longer be trusted to match
	// the log, so every later write is refused. Reopen to recover.
	ErrFailed = errors.New("store: database failed; reopen to recover")
	// ErrTxDone is returned when a committed or rolled-back Tx is reused.
	ErrTxDone = errors.New("store: transaction already finished")
	// ErrReleased is returned when a released Snapshot is read.
	ErrReleased = errors.New("store: snapshot already released")
	// ErrCrashInjected is the injected WAL failure the crash-recovery
	// torture tests (and cmd/storesmoke) trigger via Options.CrashWALBytes.
	ErrCrashInjected = errors.New("store: injected WAL crash")
)

// Options tunes Open.
type Options struct {
	// CheckpointWALBytes triggers a checkpoint when the WAL grows past
	// this many bytes; <= 0 uses 4 MiB. Checkpoints also run at Close.
	CheckpointWALBytes int64
	// CacheLimitPages bounds the in-memory page cache; clean pages beyond
	// it are evicted (dirty pages are pinned until checkpointed). <= 0
	// uses 16384 pages (64 MiB).
	CacheLimitPages int
	// CrashWALBytes, when > 0, injects a crash once that many cumulative
	// bytes have been appended to the WAL (counted across checkpoints):
	// the crossing append is written only partially and fails with
	// ErrCrashInjected, and the database marks itself failed. This is
	// the crash-injection hook the recovery torture tests kill the store
	// with; production code leaves it 0.
	CrashWALBytes int64
	// NoSync disables WAL fsyncs (commits are still ordered and crash
	// recovery still truncates torn tails, but an OS crash can lose
	// recently acknowledged commits). Benchmarks opt in; durability
	//-sensitive callers must not.
	NoSync bool
}

func (o Options) checkpointBytes() int64 {
	if o.CheckpointWALBytes <= 0 {
		return 4 << 20
	}
	return o.CheckpointWALBytes
}

func (o Options) cachePages() int {
	if o.CacheLimitPages <= 0 {
		return 16384
	}
	return o.CacheLimitPages
}

// Stats is a point-in-time account of the engine, for metrics exposition.
type Stats struct {
	// TxID is the last committed transaction id.
	TxID uint64
	// Commits and Checkpoints count since Open.
	Commits     uint64
	Checkpoints uint64
	// PageCount is the page-file size in pages (including meta slots).
	PageCount uint64
	// FreePages counts immediately reusable pages; PendingPages counts
	// pages freed but still pinned by (or awaiting release of) snapshots.
	FreePages    int
	PendingPages int
	// CachedPages is the in-memory page cache's population.
	CachedPages int
	// WALBytes is the current WAL length.
	WALBytes int64
	// ActiveSnapshots counts unreleased snapshots.
	ActiveSnapshots int
}
