package store

import "sort"

// freelist tracks reusable pages. It is runtime-only state: nothing here is
// persisted. At Open the free set is rebuilt as the complement of a
// reachability walk from the committed root, which sidesteps every
// freelist-durability hazard (torn freelist blobs, checkpoint/freelist
// ordering) at the cost of an O(pages) walk per open.
//
// Pages freed by a commit do not become reusable immediately: a snapshot
// taken before that commit may still read them. They park in pending[txid]
// until every snapshot older than txid is released.
type freelist struct {
	free    []uint64            // immediately reusable, kept sorted ascending
	pending map[uint64][]uint64 // txid -> pages freed by that commit
}

func newFreelist() *freelist {
	return &freelist{pending: make(map[uint64][]uint64)}
}

// allocate pops the lowest reusable page id, or 0 if none.
func (f *freelist) allocate() uint64 {
	if len(f.free) == 0 {
		return 0
	}
	id := f.free[0]
	f.free = f.free[1:]
	return id
}

// release parks pages freed by commit txid until older snapshots drain.
func (f *freelist) release(txid uint64, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	f.pending[txid] = append(f.pending[txid], ids...)
}

// promote moves every pending list with txid <= minActive into the free
// set. minActive is the smallest txid any live snapshot observes (or the
// current txid when no snapshots are open): a snapshot at txid S reads the
// tree as of S, so pages freed by commits with txid <= S were already
// absent from that tree and are safe to recycle.
func (f *freelist) promote(minActive uint64) {
	changed := false
	for txid, ids := range f.pending {
		if txid <= minActive {
			f.free = append(f.free, ids...)
			delete(f.pending, txid)
			changed = true
		}
	}
	if changed {
		sort.Slice(f.free, func(i, j int) bool { return f.free[i] < f.free[j] })
	}
}

// pendingCount totals parked pages across all commits.
func (f *freelist) pendingCount() int {
	n := 0
	for _, ids := range f.pending {
		n += len(ids)
	}
	return n
}
