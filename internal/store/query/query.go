// Package query is the findings query language: a lexer, recursive-descent
// parser, and canonical printer for expressions like
//
//	cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20
//
// Grammar (EBNF; keywords and field names are case-insensitive):
//
//	query   = [ expr ] [ "ORDER" "BY" field [ "ASC" | "DESC" ] ] [ "LIMIT" int ] ;
//	expr    = andExpr { "OR" andExpr } ;
//	andExpr = unary { "AND" unary } ;
//	unary   = "NOT" unary | "(" expr ")" | cmp ;
//	cmp     = field op value ;
//	op      = "=" | "!=" | ">" | ">=" | "<" | "<=" ;
//	field   = "score" | "time" | "repo" | "seq" | "total" | "severity"
//	        | "file" | "cwe" digits ;
//	value   = number | string | ident ;
//
// Strings are double-quoted with Go escape syntax; bare identifiers are
// accepted where a string is expected (severity names, repo ids without
// special characters). Dates for the time field must be quoted (RFC 3339
// or "2006-01-02"); bare numbers there are Unix seconds.
//
// The printer emits a canonical, fully parenthesized form whose reparse
// yields an identical tree — the parse→print→reparse fixpoint the fuzz
// test holds the package to.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a comparison operator.
type Op string

// The six comparison operators.
const (
	OpEq Op = "="
	OpNe Op = "!="
	OpGt Op = ">"
	OpGe Op = ">="
	OpLt Op = "<"
	OpLe Op = "<="
)

// Fields. FieldCWE covers the whole cweNNN family; Cmp.CWE carries NNN.
const (
	FieldScore    = "score"
	FieldTime     = "time"
	FieldRepo     = "repo"
	FieldSeq      = "seq"
	FieldTotal    = "total"
	FieldSeverity = "severity"
	FieldFile     = "file"
	FieldCWE      = "cwe"
)

// severityNames mirrors findings.ParseSeverity's accepted level names.
var severityNames = map[string]bool{
	"info": true, "low": true, "medium": true, "high": true, "critical": true,
}

// Value is a comparison operand: a number or a string.
type Value struct {
	IsNum bool
	Num   float64
	Str   string
}

func (v Value) String() string {
	if v.IsNum {
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
	return strconv.Quote(v.Str)
}

// Expr is a boolean expression tree node.
type Expr interface {
	String() string
	isExpr()
}

// Cmp is a field/operator/value comparison leaf.
type Cmp struct {
	Field string
	CWE   uint32 // the NNN of cweNNN when Field == FieldCWE
	Op    Op
	Val   Value
}

// And, Or, and Not combine expressions.
type (
	And struct{ L, R Expr }
	Or  struct{ L, R Expr }
	Not struct{ E Expr }
)

func (*Cmp) isExpr() {}
func (*And) isExpr() {}
func (*Or) isExpr()  {}
func (*Not) isExpr() {}

func (c *Cmp) String() string {
	f := c.Field
	if c.Field == FieldCWE {
		f = fmt.Sprintf("cwe%d", c.CWE)
	}
	return fmt.Sprintf("%s %s %s", f, c.Op, c.Val)
}
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }
func (o *Or) String() string  { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// Query is a parsed query: an optional filter, ordering, and limit.
type Query struct {
	// Where is nil for a match-everything query.
	Where Expr
	// OrderBy is the sort field ("" = the executor's default order);
	// Desc selects descending. OrderCWE carries NNN for cweNNN ordering.
	OrderBy  string
	OrderCWE uint32
	Desc     bool
	// Limit caps results; -1 means unlimited.
	Limit int
}

// String renders the canonical form: parsing it back yields an identical
// Query, and printing that yields the same string (the fixpoint).
func (q *Query) String() string {
	var parts []string
	if q.Where != nil {
		parts = append(parts, q.Where.String())
	}
	if q.OrderBy != "" {
		f := q.OrderBy
		if f == FieldCWE {
			f = fmt.Sprintf("cwe%d", q.OrderCWE)
		}
		dir := "ASC"
		if q.Desc {
			dir = "DESC"
		}
		parts = append(parts, fmt.Sprintf("ORDER BY %s %s", f, dir))
	}
	if q.Limit >= 0 {
		parts = append(parts, fmt.Sprintf("LIMIT %d", q.Limit))
	}
	return strings.Join(parts, " ")
}

// --- lexer ---

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // = != > >= < <=
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string // canonical text; idents lowercased, strings unquoted
	pos  int
}

type lexer struct {
	src string
	pos int
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentRest(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '=':
		l.pos++
		return token{tokOp, "=", start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("query: stray '!' at offset %d (did you mean \"!=\"?)", start)
	case c == '>' || c == '<':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{tokOp, op, start}, nil
	case c == '"':
		// Scan to the closing quote, honoring backslash escapes, then let
		// strconv.Unquote apply Go escape semantics.
		i := l.pos + 1
		for i < len(l.src) {
			if l.src[i] == '\\' {
				i += 2
				continue
			}
			if l.src[i] == '"' {
				break
			}
			i++
		}
		if i >= len(l.src) {
			return token{}, fmt.Errorf("query: unterminated string at offset %d", start)
		}
		raw := l.src[l.pos : i+1]
		l.pos = i + 1
		s, err := strconv.Unquote(raw)
		if err != nil {
			return token{}, fmt.Errorf("query: bad string literal at offset %d: %v", start, err)
		}
		return token{tokString, s, start}, nil
	case c >= '0' && c <= '9':
		i := l.pos
		digits := func() {
			for i < len(l.src) && l.src[i] >= '0' && l.src[i] <= '9' {
				i++
			}
		}
		digits()
		if i < len(l.src) && l.src[i] == '.' {
			i++
			if i >= len(l.src) || l.src[i] < '0' || l.src[i] > '9' {
				return token{}, fmt.Errorf("query: malformed number at offset %d", start)
			}
			digits()
		}
		// Exponent form, as the canonical printer emits (e.g. 1e+06).
		if i < len(l.src) && (l.src[i] == 'e' || l.src[i] == 'E') {
			j := i + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				i = j
				digits()
			}
		}
		text := l.src[l.pos:i]
		l.pos = i
		return token{tokNumber, text, start}, nil
	case isIdentStart(c):
		i := l.pos
		for i < len(l.src) && isIdentRest(l.src[i]) {
			i++
		}
		text := strings.ToLower(l.src[l.pos:i])
		l.pos = i
		return token{tokIdent, text, start}, nil
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	}
}

// --- parser ---

type parser struct {
	lex  *lexer
	tok  token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

// Parse parses a query string. The empty string is the match-all query.
func Parse(src string) (*Query, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	if p.tok.kind != tokEOF && !p.atKeyword("order") && !p.atKeyword("limit") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.atKeyword("by") {
			return nil, fmt.Errorf("query: expected BY after ORDER at offset %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, fmt.Errorf("query: expected a field after ORDER BY at offset %d", p.tok.pos)
		}
		field, cweNum, err := parseField(p.tok.text, p.tok.pos)
		if err != nil {
			return nil, err
		}
		q.OrderBy, q.OrderCWE = field, cweNum
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("asc") || p.atKeyword("desc") {
			q.Desc = p.tok.text == "desc"
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber || strings.Contains(p.tok.text, ".") {
			return nil, fmt.Errorf("query: LIMIT needs an integer at offset %d", p.tok.pos)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return nil, fmt.Errorf("query: bad LIMIT at offset %d: %v", p.tok.pos, err)
		}
		q.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return q, nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokIdent && p.tok.text == kw
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case p.atKeyword("not"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{E: e}, nil
	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("query: expected ')' at offset %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return p.parseCmp()
	}
}

// parseField resolves an identifier to a field name (and CWE number for
// the cweNNN family).
func parseField(text string, pos int) (string, uint32, error) {
	switch text {
	case FieldScore, FieldTime, FieldRepo, FieldSeq, FieldTotal, FieldSeverity, FieldFile:
		return text, 0, nil
	}
	if rest, ok := strings.CutPrefix(text, "cwe"); ok && rest != "" {
		n, err := strconv.ParseUint(rest, 10, 32)
		if err != nil {
			return "", 0, fmt.Errorf("query: malformed CWE field %q at offset %d", text, pos)
		}
		return FieldCWE, uint32(n), nil
	}
	return "", 0, fmt.Errorf("query: unknown field %q at offset %d", text, pos)
}

func (p *parser) parseCmp() (Expr, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("query: expected a field name at offset %d", p.tok.pos)
	}
	field, cweNum, err := parseField(p.tok.text, p.tok.pos)
	if err != nil {
		return nil, err
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, fmt.Errorf("query: expected a comparison operator at offset %d", p.tok.pos)
	}
	op := Op(p.tok.text)
	opPos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	var val Value
	switch p.tok.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad number at offset %d: %v", p.tok.pos, err)
		}
		val = Value{IsNum: true, Num: f}
	case tokString, tokIdent:
		val = Value{Str: p.tok.text}
	default:
		return nil, fmt.Errorf("query: expected a value at offset %d", p.tok.pos)
	}
	valPos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	c := &Cmp{Field: field, CWE: cweNum, Op: op, Val: val}
	if err := typeCheck(c, opPos, valPos); err != nil {
		return nil, err
	}
	return c, nil
}

// typeCheck enforces per-field operand and operator rules at parse time so
// the planner and executor never meet an ill-typed comparison.
func typeCheck(c *Cmp, opPos, valPos int) error {
	switch c.Field {
	case FieldScore, FieldSeq, FieldTotal, FieldCWE:
		if !c.Val.IsNum {
			return fmt.Errorf("query: field %s needs a numeric value at offset %d", c.Field, valPos)
		}
	case FieldTime:
		// Numbers are Unix seconds; strings must be a parseable date —
		// validated here so errors surface at parse, not execution.
		if !c.Val.IsNum {
			if _, err := ParseTime(c.Val.Str); err != nil {
				return fmt.Errorf("query: time needs Unix seconds or a quoted RFC 3339 / \"2006-01-02\" date at offset %d", valPos)
			}
		}
	case FieldSeverity:
		if !c.Val.IsNum && !severityNames[c.Val.Str] {
			return fmt.Errorf("query: unknown severity %q at offset %d", c.Val.Str, valPos)
		}
	case FieldRepo, FieldFile:
		if c.Val.IsNum {
			return fmt.Errorf("query: field %s needs a string value at offset %d", c.Field, valPos)
		}
		if c.Op != OpEq && c.Op != OpNe {
			return fmt.Errorf("query: field %s supports only = and != at offset %d", c.Field, opPos)
		}
	}
	return nil
}
