package query

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", ""},
		{"score > 5", `score > 5`},
		{"SCORE >= 0.5", `score >= 0.5`},
		{"cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20",
			`(cwe121 > 0 AND severity >= "high") ORDER BY score DESC LIMIT 20`},
		{`repo = "app-7" OR repo = other`, `(repo = "app-7" OR repo = "other")`},
		{"NOT total = 0", `NOT total = 0`},
		{"not (score > 1 and score < 2)", `NOT (score > 1 AND score < 2)`},
		{"ORDER BY time", "ORDER BY time ASC"},
		{"LIMIT 3", "LIMIT 3"},
		{`time >= "2026-08-01" AND time < 1800000000`,
			`(time >= "2026-08-01" AND time < 1.8e+09)`},
		{"severity = 3", "severity = 3"},
		{"cwe121>0 OR cwe787>0 AND total>5",
			`(cwe121 > 0 OR (cwe787 > 0 AND total > 5))`}, // AND binds tighter
		{`file = "src/a.c" ORDER BY cwe121 DESC`, `file = "src/a.c" ORDER BY cwe121 DESC`},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		if got := q.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseFixpoint(t *testing.T) {
	srcs := []string{
		"cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20",
		"(score > 1 OR score < 0.5) AND NOT repo = x",
		"NOT NOT total != 0",
		"seq >= 10 AND seq < 20 ORDER BY seq ASC LIMIT 0",
		"",
	}
	for _, src := range srcs {
		once := mustParse(t, src).String()
		twice := mustParse(t, once).String()
		if once != twice {
			t.Errorf("not a fixpoint: %q -> %q -> %q", src, once, twice)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"bogus > 1", "unknown field"},
		{"score >", "expected a value"},
		{"score 5", "comparison operator"},
		{"score > high", "numeric value"},
		{"repo > \"x\"", "only = and !="},
		{"repo = 5", "string value"},
		{"severity = urgent", "unknown severity"},
		{"time = \"yesterday\"", "time needs"},
		{"(score > 1", "expected ')'"},
		{"score > 1 AND", "field name"},
		{"LIMIT 2.5", "integer"},
		{"ORDER BY", "field after ORDER BY"},
		{"ORDER time", "expected BY after ORDER"},
		{"score ! 1", "stray '!'"},
		{"score > 1 garbage", "unexpected"},
		{`file = "unterminated`, "unterminated string"},
		{"cweX > 0", "malformed CWE field"},
		{"score > 1.2.3", "unexpected"},
		{"score > 5..", "malformed number"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseStructure(t *testing.T) {
	q := mustParse(t, "cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20")
	and, ok := q.Where.(*And)
	if !ok {
		t.Fatalf("root is %T, want *And", q.Where)
	}
	l := and.L.(*Cmp)
	if l.Field != FieldCWE || l.CWE != 121 || l.Op != OpGt || !l.Val.IsNum || l.Val.Num != 0 {
		t.Fatalf("left cmp wrong: %+v", l)
	}
	r := and.R.(*Cmp)
	if r.Field != FieldSeverity || r.Op != OpGe || r.Val.Str != "high" {
		t.Fatalf("right cmp wrong: %+v", r)
	}
	if q.OrderBy != FieldScore || !q.Desc || q.Limit != 20 {
		t.Fatalf("tail wrong: order=%q desc=%v limit=%d", q.OrderBy, q.Desc, q.Limit)
	}
	if lvl, err := SeverityOperand(r.Val); err != nil || lvl != 3 {
		t.Fatalf("SeverityOperand(high) = %d, %v", lvl, err)
	}
}

func TestTimeOperand(t *testing.T) {
	if got, err := TimeOperand(Value{IsNum: true, Num: 12345}); err != nil || got != 12345 {
		t.Fatalf("numeric time = %d, %v", got, err)
	}
	got, err := TimeOperand(Value{Str: "2026-08-01"})
	if err != nil || got <= 0 {
		t.Fatalf("date time = %d, %v", got, err)
	}
	rfc, err := TimeOperand(Value{Str: "2026-08-01T00:00:00Z"})
	if err != nil || rfc != got {
		t.Fatalf("RFC 3339 midnight %d != date form %d (%v)", rfc, got, err)
	}
}

// FuzzQueryParse holds the parser to two properties on arbitrary input:
// it never panics, and for accepted inputs the canonical print reparses to
// the same canonical print (parse → print → reparse fixpoint).
func FuzzQueryParse(f *testing.F) {
	seeds := []string{
		"",
		"cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20",
		`repo = "a\"b" OR NOT (total = 0)`,
		"time >= \"2026-08-01\" LIMIT 5",
		"score > 0.5 OR score < 0.1 AND seq != 3",
		"NOT NOT NOT file = x",
		"((((score > 1))))",
		"ORDER BY cwe787 DESC",
		"severity = critical",
		"score >",
		"\"",
		"cwe > 1",
		"limit 9999999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q -> %q: %v", src, printed, err)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("print not a fixpoint: %q -> %q -> %q", src, printed, again)
		}
	})
}
