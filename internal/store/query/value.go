package query

import (
	"fmt"
	"time"
)

// ParseTime parses a quoted time operand: RFC 3339 or a bare "2006-01-02"
// date (midnight UTC), returning Unix seconds.
func ParseTime(s string) (int64, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t.Unix(), nil
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return t.Unix(), nil
	}
	return 0, fmt.Errorf("query: unparseable time %q", s)
}

// TimeOperand resolves a time comparison value to Unix seconds (numbers
// pass through; strings parse as dates). The parser has already
// type-checked, so errors only occur on hand-built trees.
func TimeOperand(v Value) (int64, error) {
	if v.IsNum {
		return int64(v.Num), nil
	}
	return ParseTime(v.Str)
}

// severityLevels orders the level names; index = ordinal, matching the
// findings package's Severity constants.
var severityLevels = []string{"info", "low", "medium", "high", "critical"}

// SeverityOperand resolves a severity comparison value to its ordinal.
func SeverityOperand(v Value) (int, error) {
	if v.IsNum {
		return int(v.Num), nil
	}
	for i, name := range severityLevels {
		if name == v.Str {
			return i, nil
		}
	}
	return 0, fmt.Errorf("query: unknown severity %q", v.Str)
}
