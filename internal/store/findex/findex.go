// Package findex is the findings time-series on top of the store engine:
// every analysis run is persisted under a (repo, seq) key with secondary
// indexes by CWE, severity, file, and time, and queried through the
// internal/store/query language with an index-aware planner that always
// returns results byte-identical to a full scan.
//
// All records share one keyspace, disambiguated by a prefix byte:
//
//	'r' | repo | 0x00 | seq BE8             -> run JSON
//	'q' | repo                              -> last assigned seq (BE8)
//	'c' | cwe BE4 | repo | 0x00 | seq BE8   -> finding count (BE8)
//	'v' | level  | repo | 0x00 | seq BE8    -> run total (BE8); level is the
//	                                           run's max severity, exactly
//	'f' | file | 0x00 | repo | 0x00 | seq BE8 -> per-file count (BE8)
//	't' | biased time BE8 | repo | 0x00 | seq BE8 -> (empty)
//
// Repo ids are NUL-free by validation; big-endian integers make
// lexicographic key order equal numeric order, which is what turns index
// prefixes into range scans.
package findex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/findings"
	"repro/internal/store"
)

// Run is one persisted analysis run.
type Run struct {
	Repo        string             `json:"repo"`
	Seq         uint64             `json:"seq"`
	Time        int64              `json:"time"`
	Source      string             `json:"source,omitempty"`
	Score       float64            `json:"score,omitempty"`
	HasScore    bool               `json:"has_score,omitempty"`
	Total       int                `json:"total"`
	MaxSeverity findings.Severity  `json:"max_severity"`
	CountsByCWE map[uint32]int     `json:"counts_by_cwe,omitempty"`
	Findings    []findings.Finding `json:"findings,omitempty"`
}

// NewRun builds a Run from a findings report. Seq and Time are assigned at
// Append; pass score via WithScore for scored sources.
func NewRun(repo, source string, rep *findings.Report) Run {
	r := Run{Repo: repo, Source: source, Total: rep.Total(), Findings: rep.Findings}
	counts := make(map[uint32]int)
	for _, f := range rep.Findings {
		counts[uint32(f.CWE)]++
		if f.Severity > r.MaxSeverity {
			r.MaxSeverity = f.Severity
		}
	}
	if len(counts) > 0 {
		r.CountsByCWE = counts
	}
	return r
}

// WithScore attaches a model score to the run.
func (r Run) WithScore(score float64) Run {
	r.Score, r.HasScore = score, true
	return r
}

// files returns the sorted distinct files with findings.
func (r *Run) files() []string {
	seen := make(map[string]bool)
	for _, f := range r.Findings {
		seen[f.File] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Store is an open findings time-series database.
type Store struct {
	db *store.DB
}

// Open opens or creates the database at path.
func Open(path string) (*Store, error) {
	db, err := store.Open(path, store.Options{})
	if err != nil {
		return nil, err
	}
	return &Store{db: db}, nil
}

// OpenDB wraps an already-open engine (tests and benchmarks tune Options).
func OpenDB(db *store.DB) *Store { return &Store{db: db} }

// Close flushes and closes the underlying engine.
func (s *Store) Close() error { return s.db.Close() }

// DB exposes the engine for stats exposition.
func (s *Store) DB() *store.DB { return s.db }

// --- key encoding ---

const (
	prefixRun  = 'r'
	prefixSeq  = 'q'
	prefixCWE  = 'c'
	prefixSev  = 'v'
	prefixFile = 'f'
	prefixTime = 't'
)

func be8(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// biasTime maps int64 seconds to uint64 preserving order.
func biasTime(t int64) uint64 { return uint64(t) ^ (1 << 63) }

func runKey(repo string, seq uint64) []byte {
	k := make([]byte, 0, 2+len(repo)+8)
	k = append(k, prefixRun)
	k = append(k, repo...)
	k = append(k, 0)
	return append(k, be8(seq)...)
}

func seqKey(repo string) []byte {
	return append([]byte{prefixSeq}, repo...)
}

func cweKey(id uint32, repo string, seq uint64) []byte {
	k := make([]byte, 0, 6+len(repo)+9)
	k = append(k, prefixCWE)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], id)
	k = append(k, b[:]...)
	k = append(k, repo...)
	k = append(k, 0)
	return append(k, be8(seq)...)
}

func sevKey(level byte, repo string, seq uint64) []byte {
	k := make([]byte, 0, 3+len(repo)+9)
	k = append(k, prefixSev, level)
	k = append(k, repo...)
	k = append(k, 0)
	return append(k, be8(seq)...)
}

func fileKey(file, repo string, seq uint64) []byte {
	k := make([]byte, 0, 3+len(file)+len(repo)+9)
	k = append(k, prefixFile)
	k = append(k, file...)
	k = append(k, 0)
	k = append(k, repo...)
	k = append(k, 0)
	return append(k, be8(seq)...)
}

func timeKey(t int64, repo string, seq uint64) []byte {
	k := make([]byte, 0, 10+len(repo)+9)
	k = append(k, prefixTime)
	k = append(k, be8(biasTime(t))...)
	k = append(k, repo...)
	k = append(k, 0)
	return append(k, be8(seq)...)
}

// tailRepoSeq decodes the `repo | 0x00 | seq BE8` tail shared by every
// index key, given the fixed-prefix length.
func tailRepoSeq(key []byte, prefixLen int) (repo string, seq uint64, err error) {
	if len(key) < prefixLen+9 || key[len(key)-9] != 0 {
		return "", 0, fmt.Errorf("findex: malformed index key %q", key)
	}
	return string(key[prefixLen : len(key)-9]), binary.BigEndian.Uint64(key[len(key)-8:]), nil
}

// prefixEnd is the smallest key greater than every key with the prefix.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil // prefix is all 0xff: scan to the end of the keyspace
}

func validateRepo(repo string) error {
	if repo == "" {
		return fmt.Errorf("findex: empty repo id")
	}
	if strings.ContainsRune(repo, 0) {
		return fmt.Errorf("findex: repo id contains NUL")
	}
	if len(repo) > 200 {
		return fmt.Errorf("findex: repo id longer than 200 bytes")
	}
	return nil
}

// Append persists the run, assigning the repo's next sequence number (and
// stamping Time if unset) and writing every secondary index entry in the
// same transaction, so indexes can never drift from rows.
func (s *Store) Append(run Run) (uint64, error) {
	if err := validateRepo(run.Repo); err != nil {
		return 0, err
	}
	if run.Time == 0 {
		run.Time = time.Now().Unix()
	}
	var seq uint64
	err := s.db.Update(func(tx *store.Tx) error {
		sk := seqKey(run.Repo)
		cur, ok, err := tx.Get(sk)
		if err != nil {
			return err
		}
		seq = 1
		if ok && len(cur) == 8 {
			seq = binary.BigEndian.Uint64(cur) + 1
		}
		run.Seq = seq
		if err := tx.Put(sk, be8(seq)); err != nil {
			return err
		}
		data, err := json.Marshal(&run)
		if err != nil {
			return err
		}
		if err := tx.Put(runKey(run.Repo, seq), data); err != nil {
			return err
		}
		for id, count := range run.CountsByCWE {
			if count <= 0 {
				continue
			}
			if err := tx.Put(cweKey(id, run.Repo, seq), be8(uint64(count))); err != nil {
				return err
			}
		}
		if err := tx.Put(sevKey(byte(run.MaxSeverity), run.Repo, seq), be8(uint64(run.Total))); err != nil {
			return err
		}
		fileCounts := make(map[string]int)
		for _, f := range run.Findings {
			fileCounts[f.File]++
		}
		for _, file := range run.files() {
			if file == "" || strings.ContainsRune(file, 0) {
				continue // unindexable name; the row itself still records it
			}
			if err := tx.Put(fileKey(file, run.Repo, seq), be8(uint64(fileCounts[file]))); err != nil {
				return err
			}
		}
		return tx.Put(timeKey(run.Time, run.Repo, seq), nil)
	})
	if err != nil {
		return 0, err
	}
	return seq, nil
}

// Get fetches one run by (repo, seq).
func (s *Store) Get(repo string, seq uint64) (*Run, bool, error) {
	var run *Run
	var found bool
	err := s.db.View(func(snap *store.Snapshot) error {
		v, ok, err := snap.Get(runKey(repo, seq))
		if err != nil || !ok {
			return err
		}
		run = new(Run)
		if err := json.Unmarshal(v, run); err != nil {
			return fmt.Errorf("findex: run %s/%d: %w", repo, seq, err)
		}
		found = true
		return nil
	})
	return run, found, err
}

// LastSeq returns the highest sequence number assigned for repo (0 if none).
func (s *Store) LastSeq(repo string) (uint64, error) {
	var seq uint64
	err := s.db.View(func(snap *store.Snapshot) error {
		v, ok, err := snap.Get(seqKey(repo))
		if err == nil && ok && len(v) == 8 {
			seq = binary.BigEndian.Uint64(v)
		}
		return err
	})
	return seq, err
}
