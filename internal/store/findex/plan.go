package findex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/store"
	"repro/internal/store/query"
)

// Options tunes query execution.
type Options struct {
	// ForceFullScan disables the planner, always filtering every run.
	// The parity tests (and the CLI's -full-scan flag) compare its output
	// byte-for-byte against the planned path.
	ForceFullScan bool
}

// Explain describes how a query executed.
type Explain struct {
	// Index names the access path, e.g. `cwe121`, `file("src/a.c")`,
	// `severity[high..critical]`; empty for a full scan.
	Index string
	// FullScan reports whether every run row was visited.
	FullScan bool
	// Candidates counts rows fetched (index hits, or all rows for a full
	// scan); Matched counts rows that passed the filter, before LIMIT.
	Candidates int
	Matched    int
}

// String renders the one-line form the CLI's -explain flag prints.
func (e *Explain) String() string {
	path := "full scan"
	if !e.FullScan {
		path = "index=" + e.Index
	}
	return fmt.Sprintf("plan: %s; candidates=%d matched=%d", path, e.Candidates, e.Matched)
}

// planKind is the chosen access path.
type planKind int

const (
	planFull planKind = iota
	planFile
	planCWE
	planSev
	planTime
	planRepo
)

type plan struct {
	kind planKind
	file string
	cwe  uint32
	// severity levels [sevLo, sevHi], inclusive; empty when sevLo > sevHi.
	sevLo, sevHi int
	// time window [timeLo, timeHi); has* mark which bounds exist.
	timeLo, timeHi int64
	hasLo, hasHi   bool
	repo           string
}

func (p *plan) describe() string {
	switch p.kind {
	case planFile:
		return fmt.Sprintf("file(%q)", p.file)
	case planCWE:
		return fmt.Sprintf("cwe%d", p.cwe)
	case planSev:
		if p.sevLo > p.sevHi {
			return "severity[empty]"
		}
		names := []string{"info", "low", "medium", "high", "critical"}
		return fmt.Sprintf("severity[%s..%s]", names[p.sevLo], names[p.sevHi])
	case planTime:
		lo, hi := "..", ".."
		if p.hasLo {
			lo = fmt.Sprint(p.timeLo)
		}
		if p.hasHi {
			hi = fmt.Sprint(p.timeHi)
		}
		return fmt.Sprintf("time[%s,%s)", lo, hi)
	case planRepo:
		return fmt.Sprintf("repo(%q)", p.repo)
	default:
		return ""
	}
}

// andLeaves collects the comparison leaves reachable through AND nodes
// only — the predicates every matching row must satisfy, hence the ones an
// index may narrow by. Anything under OR or NOT is opaque to the planner.
func andLeaves(e query.Expr, out *[]*query.Cmp) {
	switch n := e.(type) {
	case *query.And:
		andLeaves(n.L, out)
		andLeaves(n.R, out)
	case *query.Cmp:
		*out = append(*out, n)
	}
}

// planQuery picks the access path. Candidate sets from an index are always
// a superset of the true matches (the full row filter runs afterwards), so
// the choice affects cost only, never results. Priority: file equality
// (most selective) > CWE presence > severity floor > time window > repo.
func planQuery(where query.Expr) *plan {
	if where == nil {
		return &plan{kind: planFull}
	}
	var cmps []*query.Cmp
	andLeaves(where, &cmps)

	for _, c := range cmps {
		if c.Field == query.FieldFile && c.Op == query.OpEq && !strings.ContainsRune(c.Val.Str, 0) {
			return &plan{kind: planFile, file: c.Val.Str}
		}
	}
	for _, c := range cmps {
		if c.Field != query.FieldCWE {
			continue
		}
		v := c.Val.Num
		// Indexable iff the predicate implies count >= 1 (the index only
		// lists runs where the CWE occurs).
		if (c.Op == query.OpGt && v >= 0) || (c.Op == query.OpGe && v >= 1) || (c.Op == query.OpEq && v >= 1) {
			return &plan{kind: planCWE, cwe: c.CWE}
		}
	}
	for _, c := range cmps {
		if c.Field != query.FieldSeverity {
			continue
		}
		lvl, err := query.SeverityOperand(c.Val)
		if err != nil {
			continue
		}
		p := &plan{kind: planSev, sevHi: 4}
		switch c.Op {
		case query.OpEq:
			p.sevLo, p.sevHi = lvl, lvl
		case query.OpGe:
			p.sevLo = lvl
		case query.OpGt:
			p.sevLo = lvl + 1
		default:
			continue
		}
		if p.sevLo < 0 {
			p.sevLo = 0
		}
		if p.sevHi > 4 {
			p.sevHi = 4
		}
		return p
	}
	if p := planTimeWindow(cmps); p != nil {
		return p
	}
	for _, c := range cmps {
		if c.Field == query.FieldRepo && c.Op == query.OpEq && !strings.ContainsRune(c.Val.Str, 0) {
			return &plan{kind: planRepo, repo: c.Val.Str}
		}
	}
	return &plan{kind: planFull}
}

// planTimeWindow folds every AND-level time comparison into one [lo, hi)
// window; non-integer operands widen the window by one second (supersets
// are safe, gaps are not).
func planTimeWindow(cmps []*query.Cmp) *plan {
	p := &plan{kind: planTime}
	for _, c := range cmps {
		if c.Field != query.FieldTime {
			continue
		}
		t, err := query.TimeOperand(c.Val)
		if err != nil {
			continue
		}
		frac := c.Val.IsNum && c.Val.Num != math.Trunc(c.Val.Num)
		switch c.Op {
		case query.OpGe:
			p.setLo(t)
		case query.OpGt:
			if frac {
				p.setLo(t) // t was truncated; t>x with frac x means >= t+1, but superset is fine
			} else {
				p.setLo(t + 1)
			}
		case query.OpLt:
			if frac {
				p.setHi(t + 1) // t was truncated; widen to keep the superset
			} else {
				p.setHi(t)
			}
		case query.OpLe:
			p.setHi(t + 1)
		case query.OpEq:
			p.setLo(t)
			p.setHi(t + 1)
		}
	}
	if !p.hasLo && !p.hasHi {
		return nil
	}
	return p
}

func (p *plan) setLo(t int64) {
	if !p.hasLo || t > p.timeLo {
		p.timeLo, p.hasLo = t, true
	}
}

func (p *plan) setHi(t int64) {
	if !p.hasHi || t < p.timeHi {
		p.timeHi, p.hasHi = t, true
	}
}

// Query executes a parsed query and reports how it ran. Results are sorted
// deterministically (ORDER BY key, then repo, seq) and capped by LIMIT.
// The planned path and the full-scan path return byte-identical results;
// opt.ForceFullScan exists so callers can check.
func (s *Store) Query(q *query.Query, opt Options) ([]Run, *Explain, error) {
	p := planQuery(q.Where)
	if opt.ForceFullScan {
		p = &plan{kind: planFull}
	}
	ex := &Explain{Index: p.describe(), FullScan: p.kind == planFull}

	var matches []*Run
	err := s.db.View(func(snap *store.Snapshot) error {
		collect := func(run *Run) error {
			ex.Candidates++
			if q.Where != nil {
				ok, err := evalExpr(run, q.Where)
				if err != nil || !ok {
					return err
				}
			}
			matches = append(matches, run)
			return nil
		}
		if p.kind == planFull {
			return snap.Scan([]byte{prefixRun}, prefixEnd([]byte{prefixRun}), func(k, v []byte) (bool, error) {
				run := new(Run)
				if err := json.Unmarshal(v, run); err != nil {
					return false, fmt.Errorf("findex: run row %q: %w", k, err)
				}
				return true, collect(run)
			})
		}
		fetch := func(repo string, seq uint64) error {
			v, ok, err := snap.Get(runKey(repo, seq))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("findex: index points at missing run %s/%d", repo, seq)
			}
			run := new(Run)
			if err := json.Unmarshal(v, run); err != nil {
				return fmt.Errorf("findex: run %s/%d: %w", repo, seq, err)
			}
			return collect(run)
		}
		scanIndex := func(start, end []byte, prefixLen int) error {
			return snap.Scan(start, end, func(k, v []byte) (bool, error) {
				repo, seq, err := tailRepoSeq(k, prefixLen)
				if err != nil {
					return false, err
				}
				return true, fetch(repo, seq)
			})
		}
		switch p.kind {
		case planFile:
			prefix := append([]byte{prefixFile}, p.file...)
			prefix = append(prefix, 0)
			return scanIndex(prefix, prefixEnd(prefix), len(prefix))
		case planCWE:
			prefix := make([]byte, 5)
			prefix[0] = prefixCWE
			binary.BigEndian.PutUint32(prefix[1:], p.cwe)
			return scanIndex(prefix, prefixEnd(prefix), len(prefix))
		case planSev:
			for lvl := p.sevLo; lvl <= p.sevHi; lvl++ {
				prefix := []byte{prefixSev, byte(lvl)}
				if err := scanIndex(prefix, prefixEnd(prefix), len(prefix)); err != nil {
					return err
				}
			}
			return nil
		case planTime:
			start := []byte{prefixTime}
			if p.hasLo {
				start = append(start, be8(biasTime(p.timeLo))...)
			}
			end := prefixEnd([]byte{prefixTime})
			if p.hasHi {
				end = append([]byte{prefixTime}, be8(biasTime(p.timeHi))...)
			}
			return snap.Scan(start, end, func(k, v []byte) (bool, error) {
				repo, seq, err := tailRepoSeq(k, 9)
				if err != nil {
					return false, err
				}
				return true, fetch(repo, seq)
			})
		case planRepo:
			prefix := append([]byte{prefixRun}, p.repo...)
			prefix = append(prefix, 0)
			return snap.Scan(prefix, prefixEnd(prefix), func(k, v []byte) (bool, error) {
				run := new(Run)
				if err := json.Unmarshal(v, run); err != nil {
					return false, fmt.Errorf("findex: run row %q: %w", k, err)
				}
				return true, collect(run)
			})
		}
		return fmt.Errorf("findex: unknown plan kind %d", p.kind)
	})
	if err != nil {
		return nil, nil, err
	}
	ex.Matched = len(matches)
	sortRuns(matches, q)
	if q.Limit >= 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	out := make([]Run, len(matches))
	for i, r := range matches {
		out[i] = *r
	}
	return out, ex, nil
}

// QueryString parses and executes src in one call.
func (s *Store) QueryString(src string, opt Options) ([]Run, *Explain, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return s.Query(q, opt)
}
