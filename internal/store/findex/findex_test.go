package findex

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cwe"
	"repro/internal/findings"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "findex.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// synthRun builds a randomized but deterministic run.
func synthRun(rng *rand.Rand, repo string, i int) Run {
	rep := &findings.Report{}
	nf := rng.Intn(6)
	cwePool := []cwe.ID{0, 119, 121, 134, 78, 369, 676}
	sevPool := []findings.Severity{findings.SevInfo, findings.SevLow, findings.SevMedium, findings.SevHigh, findings.SevCritical}
	for j := 0; j < nf; j++ {
		rep.Findings = append(rep.Findings, findings.Finding{
			Rule:     "synth",
			CWE:      cwePool[rng.Intn(len(cwePool))],
			File:     fmt.Sprintf("src/f%d.c", rng.Intn(4)),
			Line:     j + 1,
			Severity: sevPool[rng.Intn(len(sevPool))],
			Message:  "synthetic",
		})
	}
	run := NewRun(repo, "test", rep)
	run.Time = int64(1_700_000_000 + i*3600)
	if rng.Intn(3) > 0 {
		run = run.WithScore(rng.Float64())
	}
	return run
}

func TestAppendAssignsSeqAndPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "findex.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := &findings.Report{Findings: []findings.Finding{
		{Rule: "r", CWE: 121, File: "a.c", Line: 3, Severity: findings.SevHigh, Message: "m"},
		{Rule: "r", CWE: 121, File: "b.c", Line: 9, Severity: findings.SevMedium, Message: "m"},
	}}
	run := NewRun("app", "findings", rep).WithScore(0.75)
	run.Time = 1_700_000_000
	seq1, err := s.Append(run)
	if err != nil || seq1 != 1 {
		t.Fatalf("first append: seq=%d err=%v", seq1, err)
	}
	seq2, err := s.Append(run)
	if err != nil || seq2 != 2 {
		t.Fatalf("second append: seq=%d err=%v", seq2, err)
	}
	if last, err := s.LastSeq("app"); err != nil || last != 2 {
		t.Fatalf("LastSeq = %d, %v", last, err)
	}
	// Distinct repos get independent sequences.
	if seq, err := s.Append(NewRun("other", "findings", rep)); err != nil || seq != 1 {
		t.Fatalf("other repo seq = %d, %v", seq, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok, err := s2.Get("app", 1)
	if err != nil || !ok {
		t.Fatalf("get after reopen: %v %v", ok, err)
	}
	if got.Total != 2 || got.MaxSeverity != findings.SevHigh || !got.HasScore || got.Score != 0.75 {
		t.Fatalf("run mangled across reopen: %+v", got)
	}
	if got.CountsByCWE[121] != 2 {
		t.Fatalf("cwe counts mangled: %v", got.CountsByCWE)
	}
	if _, ok, _ := s2.Get("app", 99); ok {
		t.Fatal("phantom run")
	}
}

func TestAppendValidation(t *testing.T) {
	s := openTemp(t)
	if _, err := s.Append(Run{}); err == nil {
		t.Fatal("empty repo accepted")
	}
	if _, err := s.Append(Run{Repo: "a\x00b"}); err == nil {
		t.Fatal("NUL repo accepted")
	}
	if _, err := s.Append(Run{Repo: strings.Repeat("r", 201)}); err == nil {
		t.Fatal("oversized repo accepted")
	}
}

func TestQueryBasics(t *testing.T) {
	s := openTemp(t)
	mk := func(repo string, tm int64, score float64, hasScore bool, fs ...findings.Finding) {
		t.Helper()
		rep := &findings.Report{Findings: fs}
		run := NewRun(repo, "test", rep)
		run.Time = tm
		if hasScore {
			run = run.WithScore(score)
		}
		if _, err := s.Append(run); err != nil {
			t.Fatal(err)
		}
	}
	f121 := findings.Finding{Rule: "r", CWE: 121, File: "src/a.c", Line: 1, Severity: findings.SevHigh}
	f78 := findings.Finding{Rule: "r", CWE: 78, File: "src/b.c", Line: 2, Severity: findings.SevCritical}
	fLow := findings.Finding{Rule: "r", CWE: 0, File: "src/c.c", Line: 3, Severity: findings.SevLow}
	mk("app1", 1000, 0.9, true, f121, f121, fLow)
	mk("app1", 2000, 0.2, true, fLow)
	mk("app2", 3000, 0.5, true, f78, f121)
	mk("app3", 4000, 0, false, fLow)

	type tc struct {
		src       string
		wantRepos []string
		wantIndex string
	}
	cases := []tc{
		{"cwe121 > 0", []string{"app1", "app2"}, "cwe121"},
		{"cwe121 > 1", []string{"app1"}, "cwe121"},
		{"severity >= critical", []string{"app2"}, "severity[critical..critical]"},
		{"severity >= high ORDER BY score DESC", []string{"app1", "app2"}, "severity[high..critical]"},
		{`file = "src/b.c"`, []string{"app2"}, `file("src/b.c")`},
		{"time >= 2000 AND time < 4000", []string{"app1", "app2"}, "time[2000,4000)"},
		{`repo = "app1"`, []string{"app1", "app1"}, `repo("app1")`},
		{"score > 0.4", []string{"app1", "app2"}, ""},
		{"score < 5", []string{"app1", "app1", "app2"}, ""}, // unscored app3 never matches score
		{"total = 0", nil, ""},
		{"cwe121 > 0 AND severity >= critical", []string{"app2"}, `file`}, // index choice checked loosely below
		{"NOT cwe121 > 0", []string{"app1", "app3"}, ""},                  // NOT blocks index use
		{"", []string{"app1", "app1", "app2", "app3"}, ""},
	}
	for _, c := range cases {
		runs, ex, err := s.QueryString(c.src, Options{})
		if err != nil {
			t.Fatalf("query %q: %v", c.src, err)
		}
		var repos []string
		for _, r := range runs {
			repos = append(repos, r.Repo)
		}
		if fmt.Sprint(repos) != fmt.Sprint(c.wantRepos) {
			t.Errorf("query %q -> %v, want %v (explain: %s)", c.src, repos, c.wantRepos, ex)
		}
		if c.wantIndex == "" {
			if !ex.FullScan {
				t.Errorf("query %q used index %q, expected full scan", c.src, ex.Index)
			}
		} else if !strings.HasPrefix(ex.Index, strings.TrimSuffix(c.wantIndex, "...")) && !strings.Contains(ex.Index, "cwe121") {
			t.Errorf("query %q used %q, want %q", c.src, ex.Index, c.wantIndex)
		}
	}

	// ORDER BY + LIMIT shape.
	runs, _, err := s.QueryString("ORDER BY time DESC LIMIT 2", Options{})
	if err != nil || len(runs) != 2 || runs[0].Time != 4000 || runs[1].Time != 3000 {
		t.Fatalf("order/limit wrong: %v %v", runs, err)
	}
}

// TestIndexFullScanParity is the acceptance check: across randomized data
// and a battery of queries, the planned path must return byte-identical
// results to the forced full scan, and indexable predicates must actually
// use an index.
func TestIndexFullScanParity(t *testing.T) {
	s := openTemp(t)
	rng := rand.New(rand.NewSource(99))
	repos := []string{"app-a", "app-b", "app-c"}
	for i := 0; i < 120; i++ {
		if _, err := s.Append(synthRun(rng, repos[rng.Intn(len(repos))], i)); err != nil {
			t.Fatal(err)
		}
	}
	queries := []struct {
		src       string
		wantIndex bool
	}{
		{"cwe121 > 0", true},
		{"cwe121 >= 2 ORDER BY cwe121 DESC", true},
		{"cwe119 = 1", true},
		{"severity >= high", true},
		{"severity = medium ORDER BY time ASC", true},
		{"severity > low LIMIT 7", true},
		{`file = "src/f1.c"`, true},
		{`file = "src/f1.c" AND cwe121 > 0`, true},
		{"time >= 1700003600 AND time < 1700100000", true},
		{`repo = "app-b"`, true},
		{`repo = "app-b" AND score > 0.5 ORDER BY score DESC LIMIT 5`, true},
		{"cwe121 > 0 OR cwe78 > 0", false}, // OR blocks the planner
		{"NOT severity >= high", false},
		{"score > 0.3 ORDER BY score DESC", false},
		{"total >= 3", false},
		{"cwe121 < 2", false}, // not presence-implying
		{"severity <= low", false},
		{"", false},
		{"cwe121 > 0 AND severity >= high AND time >= 1700000000 ORDER BY score DESC LIMIT 10", true},
	}
	for _, qc := range queries {
		planned, ex, err := s.QueryString(qc.src, Options{})
		if err != nil {
			t.Fatalf("query %q: %v", qc.src, err)
		}
		full, exFull, err := s.QueryString(qc.src, Options{ForceFullScan: true})
		if err != nil {
			t.Fatalf("full scan %q: %v", qc.src, err)
		}
		if !exFull.FullScan {
			t.Fatalf("ForceFullScan did not full-scan for %q", qc.src)
		}
		pj, _ := json.Marshal(planned)
		fj, _ := json.Marshal(full)
		if string(pj) != string(fj) {
			t.Errorf("parity violation for %q (plan %s):\n planned: %s\n full:    %s", qc.src, ex, pj, fj)
		}
		if qc.wantIndex && ex.FullScan {
			t.Errorf("query %q expected an index, got full scan", qc.src)
		}
		if !qc.wantIndex && !ex.FullScan {
			t.Errorf("query %q expected full scan, used index %q", qc.src, ex.Index)
		}
	}
}

func TestExplainCounters(t *testing.T) {
	s := openTemp(t)
	rep := &findings.Report{Findings: []findings.Finding{
		{Rule: "r", CWE: 121, File: "a.c", Severity: findings.SevHigh},
	}}
	for i := 0; i < 10; i++ {
		run := NewRun("app", "t", rep)
		run.Time = int64(1000 + i)
		if _, err := s.Append(run); err != nil {
			t.Fatal(err)
		}
	}
	empty := NewRun("app", "t", &findings.Report{})
	empty.Time = 2000
	if _, err := s.Append(empty); err != nil {
		t.Fatal(err)
	}
	_, ex, err := s.QueryString("cwe121 > 0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.FullScan || ex.Candidates != 10 || ex.Matched != 10 {
		t.Fatalf("index explain off: %+v", ex)
	}
	_, ex, err = s.QueryString("cwe121 > 0", Options{ForceFullScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.FullScan || ex.Candidates != 11 || ex.Matched != 10 {
		t.Fatalf("full-scan explain off: %+v", ex)
	}
	if got := ex.String(); !strings.Contains(got, "full scan") || !strings.Contains(got, "candidates=11") {
		t.Fatalf("explain string: %q", got)
	}
}
