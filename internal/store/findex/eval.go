package findex

import (
	"fmt"
	"sort"

	"repro/internal/store/query"
)

// evalExpr applies a parsed filter to a run. Semantics, shared verbatim by
// the full-scan and index paths (the planner only narrows candidates; this
// filter is always the final word):
//
//   - score: runs without a recorded score never match a score predicate.
//   - severity: compares the run's maximum finding severity.
//   - cweNNN: the exact per-CWE finding count (no hierarchy rollup).
//   - file: "file = x" means the run has at least one finding in x;
//     != is its complement.
//   - time: Unix seconds.
func evalExpr(r *Run, e query.Expr) (bool, error) {
	switch n := e.(type) {
	case *query.And:
		l, err := evalExpr(r, n.L)
		if err != nil || !l {
			return false, err
		}
		return evalExpr(r, n.R)
	case *query.Or:
		l, err := evalExpr(r, n.L)
		if err != nil || l {
			return l, err
		}
		return evalExpr(r, n.R)
	case *query.Not:
		v, err := evalExpr(r, n.E)
		return !v, err
	case *query.Cmp:
		return evalCmp(r, n)
	default:
		return false, fmt.Errorf("findex: unknown expression node %T", e)
	}
}

func cmpNum(a float64, op query.Op, b float64) bool {
	switch op {
	case query.OpEq:
		return a == b
	case query.OpNe:
		return a != b
	case query.OpGt:
		return a > b
	case query.OpGe:
		return a >= b
	case query.OpLt:
		return a < b
	default:
		return a <= b
	}
}

func evalCmp(r *Run, c *query.Cmp) (bool, error) {
	switch c.Field {
	case query.FieldScore:
		if !r.HasScore {
			return false, nil
		}
		return cmpNum(r.Score, c.Op, c.Val.Num), nil
	case query.FieldSeq:
		return cmpNum(float64(r.Seq), c.Op, c.Val.Num), nil
	case query.FieldTotal:
		return cmpNum(float64(r.Total), c.Op, c.Val.Num), nil
	case query.FieldCWE:
		return cmpNum(float64(r.CountsByCWE[c.CWE]), c.Op, c.Val.Num), nil
	case query.FieldSeverity:
		lvl, err := query.SeverityOperand(c.Val)
		if err != nil {
			return false, err
		}
		return cmpNum(float64(r.MaxSeverity), c.Op, float64(lvl)), nil
	case query.FieldTime:
		t, err := query.TimeOperand(c.Val)
		if err != nil {
			return false, err
		}
		return cmpNum(float64(r.Time), c.Op, float64(t)), nil
	case query.FieldRepo:
		if c.Op == query.OpEq {
			return r.Repo == c.Val.Str, nil
		}
		return r.Repo != c.Val.Str, nil
	case query.FieldFile:
		has := false
		for _, f := range r.Findings {
			if f.File == c.Val.Str {
				has = true
				break
			}
		}
		if c.Op == query.OpEq {
			return has, nil
		}
		return !has, nil
	default:
		return false, fmt.Errorf("findex: unknown field %q", c.Field)
	}
}

// sortRuns orders results deterministically: by the requested key, ties
// (and the no-ORDER-BY default) broken by (repo, seq) ascending. The same
// comparator serves the index and full-scan paths, a precondition of their
// byte-for-byte parity.
func sortRuns(runs []*Run, q *query.Query) {
	sort.SliceStable(runs, func(i, j int) bool {
		a, b := runs[i], runs[j]
		if q.OrderBy != "" {
			if less, eq := orderLess(a, b, q); !eq {
				return less != q.Desc // reverse for DESC
			}
		}
		if a.Repo != b.Repo {
			return a.Repo < b.Repo
		}
		return a.Seq < b.Seq
	})
}

// orderLess compares a and b on the ORDER BY key (ascending sense),
// returning eq=true when tied.
func orderLess(a, b *Run, q *query.Query) (less, eq bool) {
	switch q.OrderBy {
	case query.FieldRepo:
		return a.Repo < b.Repo, a.Repo == b.Repo
	case query.FieldFile:
		fa, fb := firstFile(a), firstFile(b)
		return fa < fb, fa == fb
	}
	na, nb := orderNum(a, q), orderNum(b, q)
	return na < nb, na == nb
}

func orderNum(r *Run, q *query.Query) float64 {
	switch q.OrderBy {
	case query.FieldScore:
		// Unscored runs order as 0 (filtering is stricter: they never
		// match score predicates).
		return r.Score
	case query.FieldTime:
		return float64(r.Time)
	case query.FieldSeq:
		return float64(r.Seq)
	case query.FieldTotal:
		return float64(r.Total)
	case query.FieldSeverity:
		return float64(r.MaxSeverity)
	case query.FieldCWE:
		return float64(r.CountsByCWE[q.OrderCWE])
	default:
		return 0
	}
}

func firstFile(r *Run) string {
	first := ""
	for _, f := range r.Findings {
		if first == "" || f.File < first {
			first = f.File
		}
	}
	return first
}
