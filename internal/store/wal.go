package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// WAL record layout (little-endian):
//
//	u32 magic "WAL1"
//	u32 recordLen   (total record bytes, header through CRC)
//	u64 txid
//	u64 root        (root pgid after this commit)
//	u64 pageCount   (page-file size in pages after this commit)
//	u32 npages
//	npages × { u64 pgid, pageSize bytes page image }
//	u32 crc         (CRC-32/IEEE over every preceding byte of the record)
//
// A record is the unit of commit: recovery accepts it only if the magic,
// length, and CRC all check out, so a torn append (the classic
// crash-mid-commit) truncates cleanly at the last durable record boundary.
const (
	walMagic      = 0x314C4157 // "WAL1"
	walHeaderSize = 4 + 4 + 8 + 8 + 8 + 4
	walEntrySize  = 8 + pageSize
)

// wal is the append-only log. Appends are serialized by mu; fsyncs are
// batched: a committer whose bytes were already covered by another
// committer's fsync returns without touching the disk (group commit).
type wal struct {
	f      *os.File
	mu     sync.Mutex // serializes appends
	size   atomic.Int64
	syncMu sync.Mutex // serializes fsyncs
	synced atomic.Int64

	// crashAt > 0 injects a crash once written (cumulative bytes appended
	// over the log's lifetime, immune to checkpoint truncation) crosses
	// it: the crossing append lands only partially and fails with
	// ErrCrashInjected.
	crashAt int64
	written int64 // guarded by mu
	noSync  bool
}

func openWAL(path string, crashAt int64, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{f: f, crashAt: crashAt, noSync: noSync}
	w.size.Store(fi.Size())
	w.synced.Store(fi.Size())
	return w, nil
}

// encodeRecord builds one commit record from the transaction's new pages.
func encodeRecord(txid, root, pageCount uint64, pgids []uint64, pages map[uint64][]byte) []byte {
	n := len(pgids)
	rec := make([]byte, walHeaderSize+n*walEntrySize+4)
	binary.LittleEndian.PutUint32(rec[0:], walMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(rec)))
	binary.LittleEndian.PutUint64(rec[8:], txid)
	binary.LittleEndian.PutUint64(rec[16:], root)
	binary.LittleEndian.PutUint64(rec[24:], pageCount)
	binary.LittleEndian.PutUint32(rec[32:], uint32(n))
	w := walHeaderSize
	for _, id := range pgids {
		binary.LittleEndian.PutUint64(rec[w:], id)
		copy(rec[w+8:], pages[id])
		w += walEntrySize
	}
	binary.LittleEndian.PutUint32(rec[w:], crc32.ChecksumIEEE(rec[:w]))
	return rec
}

// append writes one record and returns the log's end offset afterwards.
// The bytes are in the OS buffer, not yet durable — callers must syncTo
// the returned offset before acknowledging the commit.
func (w *wal) append(rec []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	off := w.size.Load()
	if w.crashAt > 0 && w.written+int64(len(rec)) > w.crashAt {
		// Injected crash: persist only the prefix below the crash point,
		// exactly like a process killed mid-write.
		if keep := w.crashAt - w.written; keep > 0 {
			w.f.WriteAt(rec[:keep], off)
		}
		return 0, ErrCrashInjected
	}
	w.written += int64(len(rec))
	if _, err := w.f.WriteAt(rec, off); err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	end := off + int64(len(rec))
	w.size.Store(end)
	return end, nil
}

// syncTo makes every byte below end durable. Concurrent committers share
// fsyncs: whoever holds syncMu syncs the whole log, covering everyone who
// appended before the sync started.
func (w *wal) syncTo(end int64) error {
	if w.noSync || w.synced.Load() >= end {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced.Load() >= end {
		return nil // a concurrent committer's fsync already covered us
	}
	covered := w.size.Load()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.synced.Store(covered)
	return nil
}

// truncate cuts the log to n bytes (recovery discarding a torn tail, or a
// checkpoint resetting to empty) and records the new durable size.
func (w *wal) truncate(n int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(n); err != nil {
		return err
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.size.Store(n)
	w.synced.Store(n)
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// walCommit is one decoded, validated log record.
type walCommit struct {
	txid      uint64
	root      uint64
	pageCount uint64
	pages     map[uint64][]byte
}

// replayWAL scans the log from the start, yielding every intact record in
// order. It stops at the first record that is short, mismatched, or fails
// its CRC and returns the byte offset where the log should be truncated —
// everything after the last good record is a torn tail from a crash.
func replayWAL(f *os.File, yield func(walCommit) error) (truncateAt int64, err error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := fi.Size()
	var off int64
	header := make([]byte, walHeaderSize)
	for {
		if off+walHeaderSize+4 > size {
			return off, nil
		}
		if _, err := f.ReadAt(header, off); err != nil {
			return off, nil
		}
		if binary.LittleEndian.Uint32(header[0:]) != walMagic {
			return off, nil
		}
		recLen := int64(binary.LittleEndian.Uint32(header[4:]))
		npages := int64(binary.LittleEndian.Uint32(header[32:]))
		if recLen != walHeaderSize+npages*walEntrySize+4 || off+recLen > size {
			return off, nil
		}
		rec := make([]byte, recLen)
		if _, err := f.ReadAt(rec, off); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, nil
			}
			return 0, err
		}
		body := rec[:recLen-4]
		if binary.LittleEndian.Uint32(rec[recLen-4:]) != crc32.ChecksumIEEE(body) {
			return off, nil
		}
		c := walCommit{
			txid:      binary.LittleEndian.Uint64(rec[8:]),
			root:      binary.LittleEndian.Uint64(rec[16:]),
			pageCount: binary.LittleEndian.Uint64(rec[24:]),
			pages:     make(map[uint64][]byte, npages),
		}
		w := int64(walHeaderSize)
		for i := int64(0); i < npages; i++ {
			pgid := binary.LittleEndian.Uint64(rec[w:])
			c.pages[pgid] = rec[w+8 : w+8+pageSize : w+8+pageSize]
			w += walEntrySize
		}
		if err := yield(c); err != nil {
			return 0, err
		}
		off += recLen
	}
}
