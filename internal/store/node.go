package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// node is the decoded form of a leaf or branch page.
//
// Leaf: keys[i] ↦ vals[i] (inline) or an overflow chain headed at ovf[i]
// carrying vlen[i] bytes (vals[i] is nil then).
// Branch: children[i] roots the subtree whose smallest key is keys[i];
// len(children) == len(keys).
type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte
	ovf      []uint64
	vlen     []uint32
	children []uint64
}

// Cell overheads (see encode).
const (
	leafCellOverhead   = 2 + 4 + 8 // klen u16, vlen u32, ovf u64
	branchCellOverhead = 2 + 8     // klen u16, child u64
)

// size returns the encoded page length of the node.
func (n *node) size() int {
	sz := pageHeaderSize
	if n.leaf {
		for i, k := range n.keys {
			sz += leafCellOverhead + len(k)
			if n.ovf[i] == 0 {
				sz += len(n.vals[i])
			}
		}
	} else {
		for _, k := range n.keys {
			sz += branchCellOverhead + len(k)
		}
	}
	return sz
}

// encode serializes the node into a sealed page buffer. The caller
// guarantees size() <= pageSize (split enforces it).
func (n *node) encode() []byte {
	var p []byte
	if n.leaf {
		p = newPage(flagLeaf)
	} else {
		p = newPage(flagBranch)
	}
	binary.LittleEndian.PutUint16(p[offCount:], uint16(len(n.keys)))
	w := pageHeaderSize
	if n.leaf {
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(p[w:], uint16(len(k)))
			binary.LittleEndian.PutUint32(p[w+2:], n.vlen[i])
			binary.LittleEndian.PutUint64(p[w+6:], n.ovf[i])
			w += leafCellOverhead
			w += copy(p[w:], k)
			if n.ovf[i] == 0 {
				w += copy(p[w:], n.vals[i])
			}
		}
	} else {
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(p[w:], uint16(len(k)))
			binary.LittleEndian.PutUint64(p[w+2:], n.children[i])
			w += branchCellOverhead
			w += copy(p[w:], k)
		}
	}
	binary.LittleEndian.PutUint32(p[offDataLen:], uint32(w-pageHeaderSize))
	sealPage(p)
	return p
}

// decodeNode parses a checked page into a node. Every offset is bounds-
// validated so a page that passed its CRC but carries inconsistent cell
// lengths still surfaces as ErrCorrupt instead of a panic.
func decodeNode(p []byte, pgid uint64) (*node, error) {
	flags := pageFlags(p)
	if flags != flagLeaf && flags != flagBranch {
		return nil, fmt.Errorf("%w: page %d has unexpected flags %#x", ErrCorrupt, pgid, flags)
	}
	count := int(pageCount16(p))
	n := &node{leaf: flags == flagLeaf}
	r := pageHeaderSize
	bad := func() (*node, error) {
		return nil, fmt.Errorf("%w: page %d cell directory overruns the page", ErrCorrupt, pgid)
	}
	for i := 0; i < count; i++ {
		if n.leaf {
			if r+leafCellOverhead > pageSize {
				return bad()
			}
			klen := int(binary.LittleEndian.Uint16(p[r:]))
			vl := binary.LittleEndian.Uint32(p[r+2:])
			ov := binary.LittleEndian.Uint64(p[r+6:])
			r += leafCellOverhead
			if r+klen > pageSize {
				return bad()
			}
			key := append([]byte(nil), p[r:r+klen]...)
			r += klen
			var val []byte
			if ov == 0 {
				if r+int(vl) > pageSize {
					return bad()
				}
				val = append([]byte(nil), p[r:r+int(vl)]...)
				r += int(vl)
			}
			n.keys = append(n.keys, key)
			n.vals = append(n.vals, val)
			n.vlen = append(n.vlen, vl)
			n.ovf = append(n.ovf, ov)
		} else {
			if r+branchCellOverhead > pageSize {
				return bad()
			}
			klen := int(binary.LittleEndian.Uint16(p[r:]))
			child := binary.LittleEndian.Uint64(p[r+2:])
			r += branchCellOverhead
			if r+klen > pageSize {
				return bad()
			}
			n.keys = append(n.keys, append([]byte(nil), p[r:r+klen]...))
			n.children = append(n.children, child)
			r += klen
		}
	}
	return n, nil
}

// search locates key in a leaf: the insertion index and whether it is
// present.
func (n *node) search(key []byte) (int, bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	return i, i < len(n.keys) && bytes.Equal(n.keys[i], key)
}

// childIndex picks the branch child whose subtree covers key: the last
// child whose separator is <= key, clamped to 0 for keys below the first
// separator.
func (n *node) childIndex(key []byte) int {
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
	if i > 0 {
		i--
	}
	return i
}

// insertLeafCell splices a cell into a leaf at index i.
func (n *node) insertLeafCell(i int, key, val []byte, ovf uint64, vlen uint32) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
	n.ovf = append(n.ovf, 0)
	copy(n.ovf[i+1:], n.ovf[i:])
	n.ovf[i] = ovf
	n.vlen = append(n.vlen, 0)
	copy(n.vlen[i+1:], n.vlen[i:])
	n.vlen[i] = vlen
}

// removeLeafCell deletes cell i from a leaf.
func (n *node) removeLeafCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	n.ovf = append(n.ovf[:i], n.ovf[i+1:]...)
	n.vlen = append(n.vlen[:i], n.vlen[i+1:]...)
}

// insertBranchCell splices a (separator, child) pair into a branch at i.
func (n *node) insertBranchCell(i int, key []byte, child uint64) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = child
}

// removeBranchCell deletes pair i from a branch.
func (n *node) removeBranchCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i], n.children[i+1:]...)
}

// split carves the node's tail cells into a fresh right sibling so both
// halves fit a page, splitting at the size midpoint (never leaving either
// side empty). The caller has already established size() > pageSize.
func (n *node) split() *node {
	right := &node{leaf: n.leaf}
	total := n.size()
	acc := pageHeaderSize
	cut := len(n.keys) - 1 // fallback: move at least the last cell
	for i := range n.keys {
		var cell int
		if n.leaf {
			cell = leafCellOverhead + len(n.keys[i])
			if n.ovf[i] == 0 {
				cell += len(n.vals[i])
			}
		} else {
			cell = branchCellOverhead + len(n.keys[i])
		}
		if i > 0 && acc+cell > total/2 {
			cut = i
			break
		}
		acc += cell
	}
	if cut == 0 {
		cut = 1
	}
	right.keys = append(right.keys, n.keys[cut:]...)
	n.keys = n.keys[:cut]
	if n.leaf {
		right.vals = append(right.vals, n.vals[cut:]...)
		n.vals = n.vals[:cut]
		right.ovf = append(right.ovf, n.ovf[cut:]...)
		n.ovf = n.ovf[:cut]
		right.vlen = append(right.vlen, n.vlen[cut:]...)
		n.vlen = n.vlen[:cut]
	} else {
		right.children = append(right.children, n.children[cut:]...)
		n.children = n.children[:cut]
	}
	return right
}
