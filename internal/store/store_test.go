package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, path
}

func mustPut(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Update(func(tx *Tx) error { return tx.Put([]byte(key), []byte(val)) }); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func mustGet(t *testing.T, db *DB, key string) (string, bool) {
	t.Helper()
	var out string
	var found bool
	if err := db.View(func(s *Snapshot) error {
		v, ok, err := s.Get([]byte(key))
		out, found = string(v), ok
		return err
	}); err != nil {
		t.Fatalf("get %q: %v", key, err)
	}
	return out, found
}

// collect scans the whole tree into an ordered flat byte signature, the
// comparison currency of the byte-parity tests.
func collect(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Scan(nil, nil, func(k, v []byte) (bool, error) {
		fmt.Fprintf(&buf, "%q=%q;", k, v)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	if _, ok := mustGet(t, db, "missing"); ok {
		t.Fatal("empty db reported a hit")
	}
	mustPut(t, db, "alpha", "1")
	mustPut(t, db, "beta", "2")
	mustPut(t, db, "alpha", "one") // overwrite
	if v, ok := mustGet(t, db, "alpha"); !ok || v != "one" {
		t.Fatalf("alpha = %q, %v", v, ok)
	}
	if v, ok := mustGet(t, db, "beta"); !ok || v != "2" {
		t.Fatalf("beta = %q, %v", v, ok)
	}
	var found bool
	if err := db.Update(func(tx *Tx) error {
		var err error
		found, err = tx.Delete([]byte("alpha"))
		return err
	}); err != nil || !found {
		t.Fatalf("delete: %v found=%v", err, found)
	}
	if _, ok := mustGet(t, db, "alpha"); ok {
		t.Fatal("deleted key still readable")
	}
	if v, ok := mustGet(t, db, "beta"); !ok || v != "2" {
		t.Fatalf("beta after delete = %q, %v", v, ok)
	}
}

func TestKeyValidation(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	err := db.Update(func(tx *Tx) error { return tx.Put(nil, []byte("v")) })
	if !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	err = db.Update(func(tx *Tx) error { return tx.Put(make([]byte, maxKey+1), []byte("v")) })
	if !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("oversized key: %v", err)
	}
}

func TestTxDoneAndRollback(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after rollback: %v", err)
	}
	if _, ok := mustGet(t, db, "k"); ok {
		t.Fatal("rolled-back write is visible")
	}
	// A fresh writer can begin immediately (the slot was released).
	mustPut(t, db, "k2", "v2")
}

func TestTxReadsOwnWrites(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	mustPut(t, db, "committed", "c")
	err := db.Update(func(tx *Tx) error {
		if err := tx.Put([]byte("mine"), []byte("m")); err != nil {
			return err
		}
		v, ok, err := tx.Get([]byte("mine"))
		if err != nil || !ok || string(v) != "m" {
			return fmt.Errorf("own write invisible: %q %v %v", v, ok, err)
		}
		v, ok, err = tx.Get([]byte("committed"))
		if err != nil || !ok || string(v) != "c" {
			return fmt.Errorf("committed key invisible in tx: %q %v %v", v, ok, err)
		}
		if _, err := tx.Delete([]byte("committed")); err != nil {
			return err
		}
		if _, ok, _ := tx.Get([]byte("committed")); ok {
			return fmt.Errorf("own delete invisible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverflowValues(t *testing.T) {
	db, path := openTemp(t, Options{})
	big := make([]byte, 3*pageSize+517) // spans 4 overflow pages
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := db.Update(func(tx *Tx) error { return tx.Put([]byte("big"), big) }); err != nil {
		t.Fatal(err)
	}
	check := func(db *DB, want []byte) {
		t.Helper()
		if err := db.View(func(s *Snapshot) error {
			v, ok, err := s.Get([]byte("big"))
			if err != nil || !ok {
				return fmt.Errorf("big missing: %v %v", ok, err)
			}
			if !bytes.Equal(v, want) {
				return fmt.Errorf("big value mangled: %d bytes, want %d", len(v), len(want))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	check(db, big)
	// Overwrite with a different big value frees the old chain.
	big2 := bytes.Repeat([]byte("xyz"), 2000)
	if err := db.Update(func(tx *Tx) error { return tx.Put([]byte("big"), big2) }); err != nil {
		t.Fatal(err)
	}
	check(db, big2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	check(db2, big2)
}

func TestManyKeysSplitAndScanOrder(t *testing.T) {
	db, path := openTemp(t, Options{})
	const n = 3000 // forces multiple levels of splits
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		mustPut(t, db, fmt.Sprintf("key-%06d", i), fmt.Sprintf("val-%d", i))
	}
	verify := func(db *DB) {
		t.Helper()
		var seen int
		var prev []byte
		if err := db.View(func(s *Snapshot) error {
			return s.Scan(nil, nil, func(k, v []byte) (bool, error) {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					return false, fmt.Errorf("scan out of order: %q then %q", prev, k)
				}
				prev = append(prev[:0], k...)
				want := fmt.Sprintf("val-%s", bytes.TrimLeft(k[len("key-"):], "0"))
				if string(k) == "key-000000" {
					want = "val-0"
				}
				if string(v) != want {
					return false, fmt.Errorf("%q = %q, want %q", k, v, want)
				}
				seen++
				return true, nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		if seen != n {
			t.Fatalf("scan saw %d keys, want %d", seen, n)
		}
	}
	verify(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	verify(db2)

	// Range scan semantics: [start, end) half-open.
	var got []string
	if err := db2.View(func(s *Snapshot) error {
		return s.Scan([]byte("key-000010"), []byte("key-000013"), func(k, v []byte) (bool, error) {
			got = append(got, string(k))
			return true, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"key-000010", "key-000011", "key-000012"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range scan = %v, want %v", got, want)
	}
	// Early stop.
	count := 0
	if err := db2.View(func(s *Snapshot) error {
		return s.Scan(nil, nil, func(k, v []byte) (bool, error) {
			count++
			return count < 5, nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestDeleteEverythingCollapsesTree(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	const n = 1200
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("k%05d", i), "v")
	}
	for i := 0; i < n; i++ {
		err := db.Update(func(tx *Tx) error {
			found, err := tx.Delete([]byte(fmt.Sprintf("k%05d", i)))
			if err == nil && !found {
				return fmt.Errorf("k%05d not found at delete", i)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := db.View(func(s *Snapshot) error {
		return s.Scan(nil, nil, func(k, v []byte) (bool, error) {
			return false, fmt.Errorf("key %q survived total deletion", k)
		})
	}); err != nil {
		t.Fatal(err)
	}
	// The emptied tree's pages are reclaimable: a fresh round of inserts
	// must not balloon the file.
	before := db.Stats().PageCount
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("k%05d", i), "v")
	}
	after := db.Stats().PageCount
	if after > before+before/2 {
		t.Fatalf("reinsert grew page file %d -> %d; freelist not reusing", before, after)
	}
}

func TestFreelistBoundsFileGrowth(t *testing.T) {
	db, _ := openTemp(t, Options{CheckpointWALBytes: 256 << 10})
	defer db.Close()
	// 100 keys overwritten 50 times: without page reuse this would
	// allocate ~5000 fresh pages; with the freelist the file stays small.
	for round := 0; round < 50; round++ {
		if err := db.Update(func(tx *Tx) error {
			for i := 0; i < 100; i++ {
				if err := tx.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("round-%d", round))); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if pc := db.Stats().PageCount; pc > 200 {
		t.Fatalf("page file grew to %d pages under churn; freelist broken", pc)
	}
}

// TestSnapshotParityUnderConcurrentWriter is the MVCC acceptance test: a
// snapshot's full-scan signature stays byte-identical while a concurrent
// writer commits 100 transactions. Run under -race this also proves the
// reader/writer paths share no unsynchronized state.
func TestSnapshotParityUnderConcurrentWriter(t *testing.T) {
	db, _ := openTemp(t, Options{CheckpointWALBytes: 64 << 10})
	defer db.Close()
	for i := 0; i < 50; i++ {
		mustPut(t, db, fmt.Sprintf("seed-%03d", i), fmt.Sprintf("v%d", i))
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	baseline := collect(t, snap)

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for c := 0; c < 100; c++ {
			err := db.Update(func(tx *Tx) error {
				if err := tx.Put([]byte(fmt.Sprintf("new-%03d", c)), []byte("n")); err != nil {
					return err
				}
				if err := tx.Put([]byte(fmt.Sprintf("seed-%03d", c%50)), []byte(fmt.Sprintf("rewritten-%d", c))); err != nil {
					return err
				}
				_, err := tx.Delete([]byte(fmt.Sprintf("new-%03d", c-30)))
				return err
			})
			if err != nil {
				t.Errorf("writer commit %d: %v", c, err)
				return
			}
		}
	}()
	// Two concurrent readers hammer the pinned snapshot while the writer
	// churns; every signature must match the baseline byte for byte.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				if sig := collect(t, snap); !bytes.Equal(sig, baseline) {
					t.Errorf("snapshot drifted under concurrent writer:\n got %s\nwant %s", sig, baseline)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// One more full comparison after all 100 commits landed.
	if sig := collect(t, snap); !bytes.Equal(sig, baseline) {
		t.Fatalf("snapshot drifted after writer finished")
	}
	snap.Release()
	// A fresh snapshot sees the writer's world.
	if v, ok := mustGet(t, db, "seed-000"); !ok || v != "rewritten-50" {
		t.Fatalf("post-writer state wrong: seed-000 = %q, %v", v, ok)
	}
}

func TestReopenAfterAbandonReplaysWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		mustPut(t, db, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%d", i))
	}
	// Abandon = process kill: no checkpoint, data only in WAL.
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 200; i++ {
		if v, ok := mustGet(t, db2, fmt.Sprintf("k%03d", i)); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d lost across crash-reopen: %q %v", i, v, ok)
		}
	}
	// Checkpoint-on-open migrated the WAL into the page file.
	if wb := db2.Stats().WALBytes; wb != 0 {
		t.Fatalf("WAL not reset after recovery checkpoint: %d bytes", wb)
	}
}

// TestCrashRecoveryTorture kills the store at randomized WAL offsets
// mid-commit via the injection hook, reopens, and asserts every
// acknowledged commit is readable and no torn state is served.
func TestCrashRecoveryTorture(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5ec))
	for iter := 0; iter < 20; iter++ {
		crashAt := int64(200 + rng.Intn(150_000))
		opts := Options{CrashWALBytes: crashAt}
		if iter%3 == 0 {
			// Exercise the checkpoint path interleaved with the crash.
			opts.CheckpointWALBytes = 16 << 10
		}
		path := filepath.Join(t.TempDir(), "test.db")
		db, err := Open(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		acked := make(map[string]string)
		for i := 0; i < 5000; i++ {
			key := fmt.Sprintf("key-%05d", i%700)
			vlen := 1 + rng.Intn(64)
			if rng.Intn(20) == 0 {
				vlen = maxInlineValue + rng.Intn(3*pageSize) // overflow values too
			}
			val := fmt.Sprintf("iter%d-i%d-", iter, i)
			val += string(bytes.Repeat([]byte{byte('a' + i%26)}, vlen))
			err := db.Update(func(tx *Tx) error { return tx.Put([]byte(key), []byte(val)) })
			if err != nil {
				if !errors.Is(err, ErrCrashInjected) {
					t.Fatalf("iter %d: unexpected commit error: %v", iter, err)
				}
				break
			}
			acked[key] = val
		}
		// Later writes must be refused: the store failed sticky.
		if err := db.Update(func(tx *Tx) error { return tx.Put([]byte("x"), []byte("y")) }); err == nil {
			t.Fatalf("iter %d: write accepted after injected crash", iter)
		}
		db.Abandon()

		db2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("iter %d: reopen after crash: %v", iter, err)
		}
		for k, want := range acked {
			v, ok, err := func() ([]byte, bool, error) {
				s, err := db2.Snapshot()
				if err != nil {
					return nil, false, err
				}
				defer s.Release()
				return s.Get([]byte(k))
			}()
			if err != nil || !ok || string(v) != want {
				t.Fatalf("iter %d (crashAt=%d): acked key %q lost or torn after recovery: ok=%v err=%v",
					iter, crashAt, k, ok, err)
			}
		}
		// And the whole tree is structurally sound: a full scan sees
		// exactly the acked keys (unacked tail commits may or may not
		// survive — here the failing commit was never acked, so the only
		// keys are acked ones, possibly at older acked values... no:
		// every Put of a key was acked or the loop stopped, so the map
		// holds the last acked value per key, which is what must serve).
		seen := 0
		err = db2.View(func(s *Snapshot) error {
			return s.Scan(nil, nil, func(k, v []byte) (bool, error) {
				want, ok := acked[string(k)]
				if !ok {
					return false, fmt.Errorf("unacked key %q surfaced after recovery", k)
				}
				if string(v) != want {
					return false, fmt.Errorf("key %q has torn value after recovery", k)
				}
				seen++
				return true, nil
			})
		})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if seen != len(acked) {
			t.Fatalf("iter %d: scan saw %d keys, acked %d", iter, seen, len(acked))
		}
		db2.Close()
	}
}

func TestMetaSlotFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "gen1", "a")
	if err := db.Close(); err != nil { // checkpoint -> meta slot txid%2
		t.Fatal(err)
	}
	db, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "gen2", "b")
	if err := db.Close(); err != nil { // meta in the other slot, higher txid
		t.Fatal(err)
	}
	// Tear the newest meta slot: Open must fall back to the older one
	// instead of refusing (or worse, trusting garbage).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < 2; slot++ {
		buf := make([]byte, pageSize)
		if _, err := f.ReadAt(buf, slot*pageSize); err != nil {
			t.Fatal(err)
		}
		txid, _, _, ok := decodeMeta(buf)
		if ok && txid >= 2 {
			if _, err := f.WriteAt([]byte("XXXX"), slot*pageSize+12); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Close()
	db, err = Open(path, Options{})
	if err != nil {
		t.Fatalf("open with one torn meta slot: %v", err)
	}
	defer db.Close()
	if _, ok := mustGet(t, db, "gen1"); !ok {
		t.Fatal("fallback meta lost gen1")
	}
}

func TestCorruptBothMetasRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, db, "k", "v")
	db.Close()
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xff}, 2*pageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over trashed metas: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotAfterRelease(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	mustPut(t, db, "k", "v")
	s, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	s.Release() // idempotent
	if _, _, err := s.Get([]byte("k")); !errors.Is(err, ErrReleased) {
		t.Fatalf("get on released snapshot: %v", err)
	}
}

func TestStatsShape(t *testing.T) {
	db, _ := openTemp(t, Options{})
	defer db.Close()
	for i := 0; i < 10; i++ {
		mustPut(t, db, fmt.Sprintf("k%d", i), "v")
	}
	st := db.Stats()
	if st.TxID != 10 || st.Commits != 10 {
		t.Fatalf("stats txid=%d commits=%d, want 10/10", st.TxID, st.Commits)
	}
	if st.PageCount < firstDataPage+1 {
		t.Fatalf("implausible page count %d", st.PageCount)
	}
	s, _ := db.Snapshot()
	if got := db.Stats().ActiveSnapshots; got != 1 {
		t.Fatalf("ActiveSnapshots = %d, want 1", got)
	}
	s.Release()
}

func TestCacheEvictionKeepsReadsCorrect(t *testing.T) {
	// A tiny cache forces constant eviction and re-reads from disk; with a
	// checkpoint threshold low enough that pages reach the page file.
	db, _ := openTemp(t, Options{CacheLimitPages: 8, CheckpointWALBytes: 8 << 10})
	defer db.Close()
	const n = 500
	for i := 0; i < n; i++ {
		mustPut(t, db, fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%d", i))
	}
	for i := 0; i < n; i++ {
		if v, ok := mustGet(t, db, fmt.Sprintf("key-%04d", i)); !ok || v != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%04d via evicting cache: %q %v", i, v, ok)
		}
	}
	if cp := db.Stats().CachedPages; cp > 64 {
		t.Fatalf("cache did not evict: %d pages resident", cp)
	}
}
