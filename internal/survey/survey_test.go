package survey

import (
	"strings"
	"testing"
)

func TestFigure1Totals(t *testing.T) {
	papers := GenerateCorpus(1)
	counts := Run(papers)
	if got := counts.Total(MethodLoC); got != TotalLoC {
		t.Errorf("LoC papers = %d, want %d", got, TotalLoC)
	}
	if got := counts.Total(MethodCVECount); got != TotalCVE {
		t.Errorf("CVE papers = %d, want %d", got, TotalCVE)
	}
	if got := counts.Total(MethodFormal); got != TotalFormal {
		t.Errorf("formal papers = %d, want %d", got, TotalFormal)
	}
}

func TestFigure1Ordering(t *testing.T) {
	// The paper's headline: LoC dominates, CVE counting second, formal
	// verification a distant third.
	counts := Run(GenerateCorpus(1))
	if !(counts.Total(MethodLoC) > counts.Total(MethodCVECount) &&
		counts.Total(MethodCVECount) > counts.Total(MethodFormal)) {
		t.Fatalf("ordering broken: %d/%d/%d",
			counts.Total(MethodLoC), counts.Total(MethodCVECount), counts.Total(MethodFormal))
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(7)
	b := GenerateCorpus(7)
	if len(a) != len(b) {
		t.Fatal("corpus size differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paper %d differs", i)
		}
	}
}

func TestEveryVenueRepresented(t *testing.T) {
	counts := Run(GenerateCorpus(1))
	for _, v := range Venues {
		total := 0
		for _, m := range []Method{MethodLoC, MethodCVECount, MethodFormal, MethodOther} {
			total += counts.ByMethod[m][v]
		}
		if total == 0 {
			t.Errorf("venue %s has no papers", v)
		}
	}
}

func TestClassifyPhrases(t *testing.T) {
	cases := []struct {
		abstract string
		want     Method
	}{
		{"our trusted computing base is only 9000 lines of code", MethodLoC},
		{"the design shrinks to 400 LoC total", MethodLoC},
		{"we analyzed 50 CVE reports against the target", MethodCVECount},
		{"we formally verified the implementation in Coq", MethodFormal},
		{"a machine-checked proof establishes functional correctness", MethodFormal},
		{"a fast storage stack for NVMe devices", MethodOther},
	}
	for _, tc := range cases {
		if got := Classify(Paper{Abstract: tc.abstract}); got != tc.want {
			t.Errorf("Classify(%q) = %v, want %v", tc.abstract, got, tc.want)
		}
	}
}

func TestFormalDominatesOtherSignals(t *testing.T) {
	p := Paper{Abstract: "we formally verified the 10000 lines of code kernel"}
	if Classify(p) != MethodFormal {
		t.Fatal("formal phrase should dominate")
	}
}

func TestRenderTable(t *testing.T) {
	counts := Run(GenerateCorpus(1))
	out := counts.Render()
	for _, want := range []string{"CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys", "TOTAL", "384", "116", "31"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestPerVenueSplitsSumToTotals(t *testing.T) {
	for m, want := range map[Method]int{MethodLoC: TotalLoC, MethodCVECount: TotalCVE, MethodFormal: TotalFormal} {
		sum := 0
		for _, v := range Venues {
			sum += perVenue[m][v]
		}
		if sum != want {
			t.Errorf("%v split sums to %d, want %d", m, sum, want)
		}
	}
}

func TestMethodStrings(t *testing.T) {
	if !strings.Contains(MethodLoC.String(), "Lines of Code") {
		t.Error("LoC label")
	}
	if !strings.Contains(MethodFormal.String(), "formally verified") {
		t.Error("formal label")
	}
	if Method(99).String() != "Other" {
		t.Error("unknown method label")
	}
}
