// Package survey reproduces Figure 1: a survey of papers in top systems
// proceedings (CCS, PLDI, SOSP, ASPLOS, EuroSys) classified by how they
// evaluate security — lines of code, CVE-report counts, or formal
// verification. The real survey was manual; here a synthetic proceedings
// corpus is generated with evaluation-style phrases planted in the
// abstracts, and a keyword classifier (the automated analogue of the
// authors' reading) recovers the published totals: 384 LoC papers, 116 CVE
// papers, 31 formally verified papers.
//
// The paper's stacked bar gives no numeric per-venue split, so the split
// used here is synthetic and documented in EXPERIMENTS.md.
package survey

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Venue is one surveyed conference.
type Venue string

// The surveyed venues, in Figure 1's legend order.
var Venues = []Venue{"CCS", "PLDI", "SOSP", "ASPLOS", "EuroSys"}

// Method is an evaluation methodology the classifier detects.
type Method int

// Methods, in Figure 1's row order.
const (
	MethodLoC Method = iota
	MethodCVECount
	MethodFormal
	MethodOther // papers with none of the three signals
)

// String names the method as the figure labels it.
func (m Method) String() string {
	switch m {
	case MethodLoC:
		return "Papers using Lines of Code"
	case MethodCVECount:
		return "Papers using # of CVE reports"
	case MethodFormal:
		return "Papers formally verified or proved"
	default:
		return "Other"
	}
}

// Paper is one synthetic proceedings entry.
type Paper struct {
	Venue    Venue
	Title    string
	Abstract string
}

// Totals from Figure 1.
const (
	TotalLoC    = 384
	TotalCVE    = 116
	TotalFormal = 31
)

// perVenue is the synthetic split of the published totals across venues.
// Each row sums to the corresponding total.
var perVenue = map[Method]map[Venue]int{
	MethodLoC:      {"CCS": 118, "PLDI": 44, "SOSP": 78, "ASPLOS": 71, "EuroSys": 73},
	MethodCVECount: {"CCS": 58, "PLDI": 7, "SOSP": 18, "ASPLOS": 14, "EuroSys": 19},
	MethodFormal:   {"CCS": 9, "PLDI": 8, "SOSP": 7, "ASPLOS": 3, "EuroSys": 4},
}

// otherPerVenue pads each venue with papers carrying none of the signals.
var otherPerVenue = map[Venue]int{"CCS": 120, "PLDI": 90, "SOSP": 40, "ASPLOS": 60, "EuroSys": 50}

// phrase banks: the classifier looks for these signal phrases.
var locPhrases = []string{
	"our trusted computing base is only %d lines of code",
	"we reduce the TCB to %d lines of code",
	"the kernel comprises %d lines of code, far smaller than alternatives",
	"attack surface shrinks to %d LoC",
}

var cvePhrases = []string{
	"we analyzed %d CVE reports against the target",
	"the module suffered %d CVEs over five years",
	"past CVE reports (%d in total) motivate the design",
	"an audit of %d CVE entries shows the risk",
}

var formalPhrases = []string{
	"we formally verified the implementation in Coq",
	"a machine-checked proof establishes functional correctness",
	"the protocol is mathematically proved secure",
	"we verify the kernel end to end with a proof assistant",
}

var fillerSentences = []string{
	"We present a new system design for modern datacenters.",
	"Our evaluation covers realistic workloads at scale.",
	"The implementation builds on a commodity operating system.",
	"Results show significant improvements over the state of the art.",
	"We discuss deployment considerations and limitations.",
}

var titleWords = []string{
	"Efficient", "Scalable", "Secure", "Verified", "Practical", "Fast",
	"Isolation", "Virtualization", "Storage", "Networking", "Memory",
	"Scheduling", "Sandboxing", "Enclaves", "Containers", "Kernels",
}

// GenerateCorpus builds the synthetic proceedings deterministically from a
// seed. Every paper that should be classified under a method carries one of
// its signal phrases; "other" papers carry only filler.
func GenerateCorpus(seed uint64) []Paper {
	rng := stats.NewRNG(seed)
	var papers []Paper
	emit := func(v Venue, m Method) {
		var sb strings.Builder
		sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
		sb.WriteString(" ")
		switch m {
		case MethodLoC:
			fmt.Fprintf(&sb, locPhrases[rng.Intn(len(locPhrases))], rng.IntRange(500, 500000))
		case MethodCVECount:
			fmt.Fprintf(&sb, cvePhrases[rng.Intn(len(cvePhrases))], rng.IntRange(3, 400))
		case MethodFormal:
			sb.WriteString(formalPhrases[rng.Intn(len(formalPhrases))])
		default:
			sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
		}
		sb.WriteString(". ")
		sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
		title := fmt.Sprintf("%s %s for %s",
			titleWords[rng.Intn(len(titleWords))],
			titleWords[rng.Intn(len(titleWords))],
			titleWords[rng.Intn(len(titleWords))])
		papers = append(papers, Paper{Venue: v, Title: title, Abstract: sb.String()})
	}
	for _, m := range []Method{MethodLoC, MethodCVECount, MethodFormal} {
		for _, v := range Venues {
			for i := 0; i < perVenue[m][v]; i++ {
				emit(v, m)
			}
		}
	}
	for _, v := range Venues {
		for i := 0; i < otherPerVenue[v]; i++ {
			emit(v, MethodOther)
		}
	}
	rng.Shuffle(len(papers), func(i, j int) { papers[i], papers[j] = papers[j], papers[i] })
	return papers
}

// Classify detects the evaluation method of one paper from its abstract.
// Formal verification dominates (a verified system that also counts LoC is
// classed as formal in the paper's mutually-exclusive bars... the figure
// actually reports non-exclusive rows; here phrases are planted exclusively
// so either reading matches).
func Classify(p Paper) Method {
	text := strings.ToLower(p.Abstract)
	switch {
	case strings.Contains(text, "formally verified") ||
		strings.Contains(text, "machine-checked proof") ||
		strings.Contains(text, "mathematically proved") ||
		strings.Contains(text, "proof assistant"):
		return MethodFormal
	case strings.Contains(text, "cve"):
		return MethodCVECount
	case strings.Contains(text, "lines of code") || strings.Contains(text, "loc"):
		return MethodLoC
	default:
		return MethodOther
	}
}

// Counts is the Figure 1 result: per-method, per-venue paper counts.
type Counts struct {
	ByMethod map[Method]map[Venue]int
}

// Run classifies the whole corpus.
func Run(papers []Paper) Counts {
	c := Counts{ByMethod: map[Method]map[Venue]int{}}
	for _, m := range []Method{MethodLoC, MethodCVECount, MethodFormal, MethodOther} {
		c.ByMethod[m] = map[Venue]int{}
	}
	for _, p := range papers {
		c.ByMethod[Classify(p)][p.Venue]++
	}
	return c
}

// Total sums one method's counts across venues.
func (c Counts) Total(m Method) int {
	t := 0
	for _, n := range c.ByMethod[m] {
		t += n
	}
	return t
}

// Render prints Figure 1 as an aligned text table.
func (c Counts) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s", "")
	for _, v := range Venues {
		fmt.Fprintf(&sb, "%9s", v)
	}
	fmt.Fprintf(&sb, "%9s\n", "TOTAL")
	for _, m := range []Method{MethodLoC, MethodCVECount, MethodFormal} {
		fmt.Fprintf(&sb, "%-40s", m)
		for _, v := range Venues {
			fmt.Fprintf(&sb, "%9d", c.ByMethod[m][v])
		}
		fmt.Fprintf(&sb, "%9d\n", c.Total(m))
	}
	return sb.String()
}

// VenueOrderCheck returns the venues sorted by LoC-paper count, a helper
// for tests asserting the synthetic split stays stable.
func (c Counts) VenueOrderCheck() []Venue {
	vs := append([]Venue(nil), Venues...)
	sort.SliceStable(vs, func(i, j int) bool {
		return c.ByMethod[MethodLoC][vs[i]] > c.ByMethod[MethodLoC][vs[j]]
	})
	return vs
}
