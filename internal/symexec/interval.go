// Package symexec implements bounded symbolic execution over the IR with an
// interval constraint domain. It enumerates feasible control-flow paths
// under a declared input range and *counts models* — the number of input
// assignments compatible with each path's branch constraints. This supplies
// the paper's §4.1 feature "the number of different execution paths in a
// program that can be triggered by specific ranges of inputs", built without
// an external solver ecosystem.
package symexec

import (
	"fmt"
	"math"
)

// Interval is an inclusive integer range [Lo, Hi]. The empty interval is
// represented by Lo > Hi.
type Interval struct {
	Lo, Hi int64
}

// Bound is the magnitude used for "unknown" values. Keeping it well below
// MaxInt64 lets interval arithmetic saturate without overflow checks on
// every operation.
const Bound = int64(1) << 40

// Top returns the unknown-value interval.
func Top() Interval { return Interval{Lo: -Bound, Hi: Bound} }

// Single returns the singleton interval {v}.
func Single(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Empty reports whether the interval contains no values.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns the number of values in the interval as a float64.
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return float64(iv.Hi) - float64(iv.Lo) + 1
}

// Intersect returns the intersection.
func (iv Interval) Intersect(o Interval) Interval {
	return Interval{Lo: maxI(iv.Lo, o.Lo), Hi: minI(iv.Hi, o.Hi)}
}

// Join returns the convex hull.
func (iv Interval) Join(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Lo: minI(iv.Lo, o.Lo), Hi: maxI(iv.Hi, o.Hi)}
}

// String renders "[lo, hi]".
func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi)
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// clamp saturates v into [-Bound, Bound].
func clamp(v float64) int64 {
	if v > float64(Bound) {
		return Bound
	}
	if v < -float64(Bound) {
		return -Bound
	}
	return int64(v)
}

// Add returns the interval sum, saturating.
func (iv Interval) Add(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	return Interval{Lo: clamp(float64(iv.Lo) + float64(o.Lo)), Hi: clamp(float64(iv.Hi) + float64(o.Hi))}
}

// Sub returns the interval difference, saturating.
func (iv Interval) Sub(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	return Interval{Lo: clamp(float64(iv.Lo) - float64(o.Hi)), Hi: clamp(float64(iv.Hi) - float64(o.Lo))}
}

// Mul returns the interval product, saturating.
func (iv Interval) Mul(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	cands := []float64{
		float64(iv.Lo) * float64(o.Lo),
		float64(iv.Lo) * float64(o.Hi),
		float64(iv.Hi) * float64(o.Lo),
		float64(iv.Hi) * float64(o.Hi),
	}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{Lo: clamp(lo), Hi: clamp(hi)}
}

// Div returns a sound over-approximation of integer division. Division by an
// interval containing zero widens toward Top (C semantics are undefined; the
// symbolic executor separately flags it).
func (iv Interval) Div(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	if o.Lo <= 0 && o.Hi >= 0 {
		return Top()
	}
	cands := []float64{
		float64(iv.Lo) / float64(o.Lo),
		float64(iv.Lo) / float64(o.Hi),
		float64(iv.Hi) / float64(o.Lo),
		float64(iv.Hi) / float64(o.Hi),
	}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return Interval{Lo: clamp(math.Floor(lo)), Hi: clamp(math.Ceil(hi))}
}

// Mod returns a sound over-approximation of the remainder.
func (iv Interval) Mod(o Interval) Interval {
	if iv.Empty() || o.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	m := maxI(absI(o.Lo), absI(o.Hi))
	if m == 0 {
		return Top()
	}
	lo := int64(0)
	if iv.Lo < 0 {
		lo = -(m - 1)
	}
	hi := int64(0)
	if iv.Hi > 0 {
		hi = m - 1
	}
	// x % y == x exactly when |x| is below the *smallest* possible |y|.
	var mMin int64
	switch {
	case o.Lo > 0:
		mMin = o.Lo
	case o.Hi < 0:
		mMin = -o.Hi
	default:
		mMin = 0 // divisor range spans zero: no tightening
	}
	if mMin > 0 && iv.Hi < mMin && iv.Lo > -mMin {
		return iv
	}
	return Interval{Lo: lo, Hi: hi}
}

func absI(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval {
	if iv.Empty() {
		return iv
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo}
}

// Truth classifies the interval as a branch condition.
type Truth int

// Truth values.
const (
	MaybeTrue Truth = iota // contains zero and nonzero
	AlwaysTrue
	AlwaysFalse
)

// TruthOf classifies iv as a condition (nonzero = true).
func TruthOf(iv Interval) Truth {
	if iv.Empty() {
		return AlwaysFalse
	}
	if iv.Lo == 0 && iv.Hi == 0 {
		return AlwaysFalse
	}
	if !iv.Contains(0) {
		return AlwaysTrue
	}
	return MaybeTrue
}

// Compare evaluates a comparison over intervals, returning the boolean
// result interval ([0,0], [1,1], or [0,1]).
func Compare(op string, l, r Interval) Interval {
	if l.Empty() || r.Empty() {
		return Interval{Lo: 1, Hi: 0}
	}
	definitely := func(b bool) Interval {
		if b {
			return Single(1)
		}
		return Single(0)
	}
	maybe := Interval{Lo: 0, Hi: 1}
	switch op {
	case "<":
		if l.Hi < r.Lo {
			return definitely(true)
		}
		if l.Lo >= r.Hi {
			return definitely(false)
		}
	case "<=":
		if l.Hi <= r.Lo {
			return definitely(true)
		}
		if l.Lo > r.Hi {
			return definitely(false)
		}
	case ">":
		if l.Lo > r.Hi {
			return definitely(true)
		}
		if l.Hi <= r.Lo {
			return definitely(false)
		}
	case ">=":
		if l.Lo >= r.Hi {
			return definitely(true)
		}
		if l.Hi < r.Lo {
			return definitely(false)
		}
	case "==":
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return definitely(true)
		}
		if l.Hi < r.Lo || l.Lo > r.Hi {
			return definitely(false)
		}
	case "!=":
		if l.Hi < r.Lo || l.Lo > r.Hi {
			return definitely(true)
		}
		if l.Lo == l.Hi && r.Lo == r.Hi && l.Lo == r.Lo {
			return definitely(false)
		}
	}
	return maybe
}
