package symexec

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 1, Hi: 5}
	if iv.Empty() || !iv.Contains(3) || iv.Contains(6) {
		t.Fatal("basic membership broken")
	}
	if iv.Width() != 5 {
		t.Fatalf("width = %v", iv.Width())
	}
	if Single(7).Width() != 1 {
		t.Fatal("singleton width")
	}
	empty := Interval{Lo: 2, Hi: 1}
	if !empty.Empty() || empty.Width() != 0 {
		t.Fatal("empty interval broken")
	}
}

func TestIntervalIntersectJoin(t *testing.T) {
	a := Interval{Lo: 0, Hi: 10}
	b := Interval{Lo: 5, Hi: 15}
	got := a.Intersect(b)
	if got.Lo != 5 || got.Hi != 10 {
		t.Fatalf("intersect = %v", got)
	}
	j := a.Join(b)
	if j.Lo != 0 || j.Hi != 15 {
		t.Fatalf("join = %v", j)
	}
	disjoint := Interval{Lo: 20, Hi: 30}
	if !a.Intersect(disjoint).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
	if e := (Interval{Lo: 1, Hi: 0}).Join(a); e != a {
		t.Fatalf("join with empty = %v", e)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a := Interval{Lo: 1, Hi: 3}
	b := Interval{Lo: -2, Hi: 2}
	if got := a.Add(b); got.Lo != -1 || got.Hi != 5 {
		t.Fatalf("add = %v", got)
	}
	if got := a.Sub(b); got.Lo != -1 || got.Hi != 5 {
		t.Fatalf("sub = %v", got)
	}
	if got := a.Mul(b); got.Lo != -6 || got.Hi != 6 {
		t.Fatalf("mul = %v", got)
	}
	if got := a.Neg(); got.Lo != -3 || got.Hi != -1 {
		t.Fatalf("neg = %v", got)
	}
}

func TestIntervalDivByZeroWidens(t *testing.T) {
	a := Interval{Lo: 10, Hi: 20}
	z := Interval{Lo: -1, Hi: 1}
	if got := a.Div(z); got != Top() {
		t.Fatalf("div by zero-containing = %v", got)
	}
	if got := a.Div(Single(2)); got.Lo != 5 || got.Hi != 10 {
		t.Fatalf("div = %v", got)
	}
}

func TestIntervalSaturation(t *testing.T) {
	big := Interval{Lo: Bound - 10, Hi: Bound}
	sum := big.Add(big)
	if sum.Hi != Bound {
		t.Fatalf("saturation failed: %v", sum)
	}
	prod := big.Mul(big)
	if prod.Hi != Bound {
		t.Fatalf("mul saturation failed: %v", prod)
	}
}

// Property: interval arithmetic is sound — the result of the concrete
// operation on members stays inside the abstract result.
func TestIntervalSoundnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		mk := func() Interval {
			a := int64(r.IntRange(-50, 50))
			b := int64(r.IntRange(-50, 50))
			if a > b {
				a, b = b, a
			}
			return Interval{Lo: a, Hi: b}
		}
		x, y := mk(), mk()
		cx := int64(r.IntRange(int(x.Lo), int(x.Hi)))
		cy := int64(r.IntRange(int(y.Lo), int(y.Hi)))
		if !x.Add(y).Contains(cx + cy) {
			return false
		}
		if !x.Sub(y).Contains(cx - cy) {
			return false
		}
		if !x.Mul(y).Contains(cx * cy) {
			return false
		}
		if cy != 0 {
			if !x.Div(y).Contains(cx / cy) {
				return false
			}
			if !x.Mod(y).Contains(cx % cy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTruthOf(t *testing.T) {
	if TruthOf(Single(0)) != AlwaysFalse {
		t.Fatal("zero should be false")
	}
	if TruthOf(Single(5)) != AlwaysTrue {
		t.Fatal("nonzero should be true")
	}
	if TruthOf(Interval{Lo: -1, Hi: 1}) != MaybeTrue {
		t.Fatal("mixed should be maybe")
	}
	if TruthOf(Interval{Lo: 1, Hi: 0}) != AlwaysFalse {
		t.Fatal("empty should be false")
	}
}

func TestCompareDefinite(t *testing.T) {
	a := Interval{Lo: 0, Hi: 5}
	b := Interval{Lo: 10, Hi: 20}
	if Compare("<", a, b) != Single(1) {
		t.Fatal("a < b should be definite")
	}
	if Compare(">", a, b) != Single(0) {
		t.Fatal("a > b should be definitely false")
	}
	if Compare("==", a, b) != Single(0) {
		t.Fatal("disjoint == should be false")
	}
	if Compare("!=", a, b) != Single(1) {
		t.Fatal("disjoint != should be true")
	}
	if Compare("==", Single(3), Single(3)) != Single(1) {
		t.Fatal("equal singletons")
	}
	over := Interval{Lo: 3, Hi: 12}
	if got := Compare("<", a, over); got.Lo != 0 || got.Hi != 1 {
		t.Fatalf("overlap compare = %v", got)
	}
}

// Property: Compare agrees with concrete comparison on singletons.
func TestCompareSingletonProperty(t *testing.T) {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		a := int64(r.IntRange(-20, 20))
		b := int64(r.IntRange(-20, 20))
		for _, op := range ops {
			var want bool
			switch op {
			case "<":
				want = a < b
			case "<=":
				want = a <= b
			case ">":
				want = a > b
			case ">=":
				want = a >= b
			case "==":
				want = a == b
			case "!=":
				want = a != b
			}
			got := Compare(op, Single(a), Single(b))
			if want && got != Single(1) {
				return false
			}
			if !want && got != Single(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalString(t *testing.T) {
	if (Interval{Lo: 1, Hi: 2}).String() != "[1, 2]" {
		t.Fatal("string format")
	}
	if (Interval{Lo: 1, Hi: 0}).String() != "[empty]" {
		t.Fatal("empty string format")
	}
}
