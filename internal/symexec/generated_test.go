package symexec

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/langgen"
	"repro/internal/minic"
)

// Property: the symbolic executor terminates within its budgets on every
// generated program, and its accounting invariants hold.
func TestExploreGeneratedPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		spec := langgen.DefaultSpec()
		spec.Seed = seed
		spec.Files = 2
		spec.LoopProb = 0.25
		spec.BranchProb = 0.3
		tree := langgen.Generate(spec)
		for _, f := range tree.Files {
			prog, err := minic.Parse(f.Content)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			lowered, err := ir.Lower(prog)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			cfg := DefaultConfig()
			cfg.MaxPaths = 512
			for _, fn := range lowered.Funcs {
				res := Explore(fn, cfg)
				total := res.FeasiblePaths + res.TruncatedPaths + res.InfeasiblePaths
				if total == 0 {
					t.Fatalf("seed %d %s: no paths at all", seed, fn.Name)
				}
				if res.FeasiblePaths+res.TruncatedPaths > cfg.MaxPaths+2 {
					t.Fatalf("seed %d %s: budget exceeded (%d)", seed, fn.Name, total)
				}
				if res.BlocksCovered > res.BlocksTotal {
					t.Fatalf("seed %d %s: coverage overflow", seed, fn.Name)
				}
				if res.ModelCount < 0 {
					t.Fatalf("seed %d %s: negative models", seed, fn.Name)
				}
				for _, p := range res.Paths {
					if p.Models < 0 {
						t.Fatalf("seed %d %s: negative path models", seed, fn.Name)
					}
				}
			}
		}
	}
}

// Property: interpreting a function on concrete inputs must agree with the
// symbolic return interval of the path those inputs drive — spot-checked by
// verifying the concrete return value lies inside SOME feasible path's
// return interval.
func TestExploreSoundAgainstConcrete(t *testing.T) {
	src := `
int f(int x) {
	int y = 0;
	if (x < 50) { y = x + 1; } else { y = x * 2; }
	if (y > 120) { return 999; }
	return y;
}`
	fn := ir.MustLowerSource(src).Funcs[0]
	res := Explore(fn, DefaultConfig())
	concrete := func(x int64) int64 {
		var y int64
		if x < 50 {
			y = x + 1
		} else {
			y = x * 2
		}
		if y > 120 {
			return 999
		}
		return y
	}
	for _, x := range []int64{0, 10, 49, 50, 59, 60, 61, 100, 255} {
		want := concrete(x)
		found := false
		for _, p := range res.Paths {
			if !p.Return.Empty() && p.Return.Contains(want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("concrete f(%d)=%d not covered by any path interval: %+v",
				x, want, res.Paths)
		}
	}
}
