package symexec

import (
	"testing"

	"repro/internal/ir"
)

const benchSrc = `
int classify(int x, int y) {
	int score = 0;
	if (x < 32) { score = score + 1; }
	if (x < 64) { score = score + 2; }
	if (x < 128) { score = score + 4; }
	if (y < 32) { score = score + 8; }
	if (y < 64) { score = score + 16; }
	while (score > 20) { score = score - 5; }
	return score;
}`

func BenchmarkExplore(b *testing.B) {
	fn := ir.MustLowerSource(benchSrc).Funcs[0]
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := Explore(fn, cfg)
		if res.FeasiblePaths == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkIntervalArithmetic(b *testing.B) {
	x := Interval{Lo: -100, Hi: 100}
	y := Interval{Lo: 3, Hi: 17}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y).Mul(y).Sub(x).Div(y).Mod(y)
	}
}
