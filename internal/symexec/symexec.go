package symexec

import (
	"math"
	"sort"

	"repro/internal/ir"
)

// Config bounds the exploration and declares input ranges.
type Config struct {
	// InputRange is the interval assumed for every input (parameters and
	// results of source functions).
	InputRange Interval
	// Sources are function names whose results are fresh inputs.
	Sources map[string]bool
	// MaxPaths caps the number of explored paths.
	MaxPaths int
	// MaxSteps caps instructions executed along one path.
	MaxSteps int
	// LoopBound caps visits to any single block along one path.
	LoopBound int
}

// DefaultConfig uses byte-ranged inputs and modest exploration bounds,
// matching a quick per-function analysis.
func DefaultConfig() Config {
	return Config{
		InputRange: Interval{Lo: 0, Hi: 255},
		Sources: map[string]bool{
			"read_input": true, "recv": true, "read": true, "getenv": true,
			"fgets": true, "scanf": true,
		},
		MaxPaths:  4096,
		MaxSteps:  10000,
		LoopBound: 3,
	}
}

// PathRecord describes one completed feasible path.
type PathRecord struct {
	Blocks []string // block names in execution order
	Models float64  // input assignments compatible with the path constraints
	Return Interval // interval of the returned value (empty for void return)
}

// Result summarizes exploring one function.
type Result struct {
	FeasiblePaths   int
	TruncatedPaths  int // hit a step/loop bound before returning
	InfeasiblePaths int // pruned by constraint contradiction
	// ModelCount is the total count over feasible paths; the interval
	// abstraction makes this an over-approximation.
	ModelCount float64
	// InputSpace is the volume of the declared input space.
	InputSpace float64
	// BlocksCovered / BlocksTotal measure path coverage.
	BlocksCovered, BlocksTotal int
	// DivByZeroRisks counts divisions whose divisor interval contains 0.
	DivByZeroRisks int
	Paths          []PathRecord
}

// state is one symbolic machine state.
type state struct {
	env    map[string]Interval
	ver    map[string]int // write version per variable
	arrays map[string]Interval
	// inputs tracks, for each input dimension, its refined interval while
	// the variable still holds the input value.
	inputs   map[string]Interval
	inputVer map[string]int
	// copyOf links a variable to the variable it was copied from, so branch
	// refinements propagate back to input dimensions through copies
	// ("data = t0" where t0 was read_input()'s result).
	copyOf map[string]copyLink
	visits map[*ir.Block]int
	steps  int
	trail  []string
}

type copyLink struct {
	root    string
	rootVer int
}

func (s *state) clone() *state {
	c := &state{
		env:      make(map[string]Interval, len(s.env)),
		ver:      make(map[string]int, len(s.ver)),
		arrays:   make(map[string]Interval, len(s.arrays)),
		inputs:   make(map[string]Interval, len(s.inputs)),
		inputVer: make(map[string]int, len(s.inputVer)),
		copyOf:   make(map[string]copyLink, len(s.copyOf)),
		visits:   make(map[*ir.Block]int, len(s.visits)),
		steps:    s.steps,
		trail:    append([]string(nil), s.trail...),
	}
	for k, v := range s.copyOf {
		c.copyOf[k] = v
	}
	for k, v := range s.env {
		c.env[k] = v
	}
	for k, v := range s.ver {
		c.ver[k] = v
	}
	for k, v := range s.arrays {
		c.arrays[k] = v
	}
	for k, v := range s.inputs {
		c.inputs[k] = v
	}
	for k, v := range s.inputVer {
		c.inputVer[k] = v
	}
	for k, v := range s.visits {
		c.visits[k] = v
	}
	return c
}

func (s *state) write(name string, iv Interval) {
	s.env[name] = iv
	s.ver[name]++
	delete(s.copyOf, name)
}

// linkCopy records that dst currently holds the same value as src.
func (s *state) linkCopy(dst, src string) {
	root, rootVer := src, s.ver[src]
	if link, ok := s.copyOf[src]; ok && s.ver[link.root] == link.rootVer {
		root, rootVer = link.root, link.rootVer
	}
	s.copyOf[dst] = copyLink{root: root, rootVer: rootVer}
}

// refineVar narrows a variable's interval; if the variable still holds its
// input value, the input dimension narrows with it, and the refinement
// propagates through valid copy links.
func (s *state) refineVar(name string, iv Interval) {
	cur, ok := s.env[name]
	if !ok {
		cur = Top()
	}
	next := cur.Intersect(iv)
	s.env[name] = next
	if inVer, isInput := s.inputVer[name]; isInput && inVer == s.ver[name] {
		s.inputs[name] = next
	}
	if link, ok := s.copyOf[name]; ok && s.ver[link.root] == link.rootVer && link.root != name {
		s.refineVar(link.root, iv)
	}
}

func (s *state) markInput(name string, iv Interval) {
	s.env[name] = iv
	s.inputs[name] = iv
	s.inputVer[name] = s.ver[name]
	delete(s.copyOf, name)
}

// modelCount multiplies the refined input widths, saturating.
func (s *state) modelCount() float64 {
	total := 1.0
	for _, iv := range s.inputs {
		total *= iv.Width()
		if total > 1e30 {
			return 1e30
		}
	}
	return total
}

// executor carries shared exploration context.
type executor struct {
	cfg     Config
	f       *ir.Func
	defOf   map[string]ir.Instr // temp name -> defining instruction
	res     *Result
	covered map[*ir.Block]bool
	stopped bool
}

// Explore symbolically executes f under cfg.
func Explore(f *ir.Func, cfg Config) *Result {
	ex := &executor{
		cfg:     cfg,
		f:       f,
		defOf:   map[string]ir.Instr{},
		res:     &Result{BlocksTotal: len(f.Blocks)},
		covered: map[*ir.Block]bool{},
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != nil {
				if t, ok := d.(ir.Temp); ok {
					ex.defOf[t.String()] = in
				}
			}
		}
	}
	st := &state{
		env:      map[string]Interval{},
		ver:      map[string]int{},
		arrays:   map[string]Interval{},
		inputs:   map[string]Interval{},
		inputVer: map[string]int{},
		copyOf:   map[string]copyLink{},
		visits:   map[*ir.Block]int{},
	}
	inputSpace := 1.0
	for _, p := range f.Params {
		st.markInput(p, cfg.InputRange)
		inputSpace *= cfg.InputRange.Width()
	}
	ex.res.InputSpace = inputSpace
	ex.run(f.Entry(), st)
	ex.res.BlocksCovered = len(ex.covered)
	sort.Slice(ex.res.Paths, func(i, j int) bool {
		return ex.res.Paths[i].Models > ex.res.Paths[j].Models
	})
	return ex.res
}

func (ex *executor) pathBudgetLeft() bool {
	return ex.res.FeasiblePaths+ex.res.TruncatedPaths+ex.res.InfeasiblePaths < ex.cfg.MaxPaths
}

func (ex *executor) run(b *ir.Block, st *state) {
	if ex.stopped {
		return
	}
	if !ex.pathBudgetLeft() {
		ex.stopped = true
		return
	}
	st.visits[b]++
	if st.visits[b] > ex.cfg.LoopBound {
		ex.res.TruncatedPaths++
		return
	}
	ex.covered[b] = true
	st.trail = append(st.trail, b.Name)

	for _, in := range b.Instrs {
		st.steps++
		if st.steps > ex.cfg.MaxSteps {
			ex.res.TruncatedPaths++
			return
		}
		ex.step(in, st)
	}

	switch term := b.Term.(type) {
	case *ir.Ret:
		ex.res.FeasiblePaths++
		rec := PathRecord{
			Blocks: append([]string(nil), st.trail...),
			Models: st.modelCount(),
			Return: Interval{Lo: 1, Hi: 0},
		}
		if term.Value != nil {
			rec.Return = ex.eval(term.Value, st)
		}
		ex.res.ModelCount = math.Min(ex.res.ModelCount+rec.Models, 1e30)
		if len(ex.res.Paths) < 1024 {
			ex.res.Paths = append(ex.res.Paths, rec)
		}
	case *ir.Jump:
		ex.run(term.Target, st)
	case *ir.Branch:
		cond := ex.eval(term.Cond, st)
		switch TruthOf(cond) {
		case AlwaysTrue:
			ex.res.InfeasiblePaths++ // the false edge is statically dead here
			ex.run(term.True, st)
		case AlwaysFalse:
			ex.res.InfeasiblePaths++ // the true edge is statically dead here
			ex.run(term.False, st)
		default:
			trueSt := st.clone()
			if ex.refine(term.Cond, true, trueSt) {
				ex.run(term.True, trueSt)
			} else {
				ex.res.InfeasiblePaths++
			}
			if ex.refine(term.Cond, false, st) {
				ex.run(term.False, st)
			} else {
				ex.res.InfeasiblePaths++
			}
		}
	case nil:
		ex.res.FeasiblePaths++
	}
}

func (ex *executor) step(in ir.Instr, st *state) {
	switch x := in.(type) {
	case *ir.Assign:
		st.write(x.Dst.String(), ex.eval(x.Src, st))
		if srcName, ok := varName(x.Src); ok {
			st.linkCopy(x.Dst.String(), srcName)
		}
	case *ir.BinOp:
		l, r := ex.eval(x.L, st), ex.eval(x.R, st)
		var out Interval
		switch x.Op {
		case "+":
			out = l.Add(r)
		case "-":
			out = l.Sub(r)
		case "*":
			out = l.Mul(r)
		case "/":
			if r.Contains(0) {
				ex.res.DivByZeroRisks++
			}
			out = l.Div(r)
		case "%":
			if r.Contains(0) {
				ex.res.DivByZeroRisks++
			}
			out = l.Mod(r)
		case "<", "<=", ">", ">=", "==", "!=":
			out = Compare(x.Op, l, r)
		case "&&":
			out = logicalAnd(l, r)
		case "||":
			out = logicalOr(l, r)
		default:
			out = Top()
		}
		st.write(x.Dst.String(), out)
	case *ir.UnOp:
		v := ex.eval(x.X, st)
		switch x.Op {
		case "-":
			st.write(x.Dst.String(), v.Neg())
		case "!":
			switch TruthOf(v) {
			case AlwaysTrue:
				st.write(x.Dst.String(), Single(0))
			case AlwaysFalse:
				st.write(x.Dst.String(), Single(1))
			default:
				st.write(x.Dst.String(), Interval{Lo: 0, Hi: 1})
			}
		default:
			st.write(x.Dst.String(), Top())
		}
	case *ir.Call:
		if x.Dst != nil {
			name := x.Dst.String()
			if ex.cfg.Sources[x.Name] {
				st.ver[name]++
				st.markInput(name, ex.cfg.InputRange)
				ex.res.InputSpace = math.Min(ex.res.InputSpace*ex.cfg.InputRange.Width(), 1e30)
			} else {
				st.write(name, Top())
			}
		}
	case *ir.ArrayLoad:
		iv, ok := st.arrays[x.Array]
		if !ok {
			iv = Top()
		}
		st.write(x.Dst.String(), iv)
	case *ir.ArrayStore:
		cur, ok := st.arrays[x.Array]
		v := ex.eval(x.Src, st)
		if !ok {
			st.arrays[x.Array] = v
		} else {
			st.arrays[x.Array] = cur.Join(v)
		}
	}
}

func (ex *executor) eval(v ir.Value, st *state) Interval {
	switch x := v.(type) {
	case ir.Const:
		return Single(x.V)
	case ir.Var:
		if iv, ok := st.env[x.Name]; ok {
			return iv
		}
		return Top()
	case ir.Temp:
		if iv, ok := st.env[x.String()]; ok {
			return iv
		}
		return Top()
	}
	return Top()
}

func logicalAnd(l, r Interval) Interval {
	lt, rt := TruthOf(l), TruthOf(r)
	if lt == AlwaysFalse || rt == AlwaysFalse {
		return Single(0)
	}
	if lt == AlwaysTrue && rt == AlwaysTrue {
		return Single(1)
	}
	return Interval{Lo: 0, Hi: 1}
}

func logicalOr(l, r Interval) Interval {
	lt, rt := TruthOf(l), TruthOf(r)
	if lt == AlwaysTrue || rt == AlwaysTrue {
		return Single(1)
	}
	if lt == AlwaysFalse && rt == AlwaysFalse {
		return Single(0)
	}
	return Interval{Lo: 0, Hi: 1}
}

// refine narrows st so that cond has the given truth value, returning false
// when the constraint is unsatisfiable in the interval domain.
func (ex *executor) refine(cond ir.Value, want bool, st *state) bool {
	switch x := cond.(type) {
	case ir.Const:
		return (x.V != 0) == want
	case ir.Var:
		return ex.refineNonzero(x.Name, want, st)
	case ir.Temp:
		def, ok := ex.defOf[x.String()]
		if !ok {
			return ex.refineNonzero(x.String(), want, st)
		}
		switch d := def.(type) {
		case *ir.BinOp:
			switch d.Op {
			case "<", "<=", ">", ">=", "==", "!=":
				return ex.refineCompare(d, want, st)
			case "&&":
				if want {
					return ex.refine(d.L, true, st) && ex.refine(d.R, true, st)
				}
				// !(a && b): cannot refine without forking; check feasibility.
				return TruthOf(logicalAnd(ex.eval(d.L, st), ex.eval(d.R, st))) != AlwaysTrue
			case "||":
				if !want {
					return ex.refine(d.L, false, st) && ex.refine(d.R, false, st)
				}
				return TruthOf(logicalOr(ex.eval(d.L, st), ex.eval(d.R, st))) != AlwaysFalse
			}
		case *ir.UnOp:
			if d.Op == "!" {
				return ex.refine(d.X, !want, st)
			}
		}
		return ex.refineNonzero(x.String(), want, st)
	}
	return true
}

// refineNonzero applies "v != 0" or "v == 0" to a named value.
func (ex *executor) refineNonzero(name string, want bool, st *state) bool {
	cur, ok := st.env[name]
	if !ok {
		cur = Top()
	}
	if !want {
		if !cur.Contains(0) {
			return false
		}
		st.refineVar(name, Single(0))
		return true
	}
	if cur.Lo == 0 && cur.Hi == 0 {
		return false
	}
	// Trim a zero endpoint; interior zeros cannot be excised by one interval.
	if cur.Lo == 0 {
		st.refineVar(name, Interval{Lo: 1, Hi: cur.Hi})
	} else if cur.Hi == 0 {
		st.refineVar(name, Interval{Lo: cur.Lo, Hi: -1})
	}
	return true
}

// refineCompare narrows the operands of a comparison BinOp.
func (ex *executor) refineCompare(d *ir.BinOp, want bool, st *state) bool {
	op := d.Op
	if !want {
		op = negateOp(op)
	}
	l, r := ex.eval(d.L, st), ex.eval(d.R, st)
	if TruthOf(Compare(op, l, r)) == AlwaysFalse {
		return false
	}
	lName, lIsVar := varName(d.L)
	rName, rIsVar := varName(d.R)
	var newL, newR Interval
	switch op {
	case "<":
		newL = Interval{Lo: l.Lo, Hi: minI(l.Hi, r.Hi-1)}
		newR = Interval{Lo: maxI(r.Lo, l.Lo+1), Hi: r.Hi}
	case "<=":
		newL = Interval{Lo: l.Lo, Hi: minI(l.Hi, r.Hi)}
		newR = Interval{Lo: maxI(r.Lo, l.Lo), Hi: r.Hi}
	case ">":
		newL = Interval{Lo: maxI(l.Lo, r.Lo+1), Hi: l.Hi}
		newR = Interval{Lo: r.Lo, Hi: minI(r.Hi, l.Hi-1)}
	case ">=":
		newL = Interval{Lo: maxI(l.Lo, r.Lo), Hi: l.Hi}
		newR = Interval{Lo: r.Lo, Hi: minI(r.Hi, l.Hi)}
	case "==":
		both := l.Intersect(r)
		newL, newR = both, both
	case "!=":
		newL, newR = l, r
		// Only refine when the other side is a singleton endpoint.
		if r.Lo == r.Hi {
			if l.Lo == r.Lo {
				newL = Interval{Lo: l.Lo + 1, Hi: l.Hi}
			} else if l.Hi == r.Lo {
				newL = Interval{Lo: l.Lo, Hi: l.Hi - 1}
			}
		}
		if l.Lo == l.Hi {
			if r.Lo == l.Lo {
				newR = Interval{Lo: r.Lo + 1, Hi: r.Hi}
			} else if r.Hi == l.Lo {
				newR = Interval{Lo: r.Lo, Hi: r.Hi - 1}
			}
		}
	}
	if newL.Empty() || newR.Empty() {
		return false
	}
	if lIsVar {
		st.refineVar(lName, newL)
	}
	if rIsVar {
		st.refineVar(rName, newR)
	}
	return true
}

func negateOp(op string) string {
	switch op {
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	case "==":
		return "!="
	case "!=":
		return "=="
	}
	return op
}

func varName(v ir.Value) (string, bool) {
	switch x := v.(type) {
	case ir.Var:
		return x.Name, true
	case ir.Temp:
		return x.String(), true
	}
	return "", false
}

// Log10Paths summarizes a whole program as the base-10 logarithm of the
// total feasible-path count plus one — the "feasible_paths_log10" feature.
func Log10Paths(p *ir.Program, cfg Config) float64 {
	total := 0.0
	for _, f := range p.Funcs {
		total += float64(Explore(f, cfg).FeasiblePaths)
	}
	return math.Log10(total + 1)
}
