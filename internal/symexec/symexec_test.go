package symexec

import (
	"testing"

	"repro/internal/ir"
)

func explore(t *testing.T, src string) *Result {
	t.Helper()
	f := ir.MustLowerSource(src).Funcs[0]
	return Explore(f, DefaultConfig())
}

func TestExploreStraightLine(t *testing.T) {
	res := explore(t, "int f(void) { return 42; }")
	if res.FeasiblePaths != 1 {
		t.Fatalf("paths = %d", res.FeasiblePaths)
	}
	if len(res.Paths) != 1 || res.Paths[0].Return != Single(42) {
		t.Fatalf("paths = %+v", res.Paths)
	}
	// No inputs: one model (the empty assignment).
	if res.ModelCount != 1 {
		t.Fatalf("models = %v", res.ModelCount)
	}
}

func TestExploreBranchSplitsModels(t *testing.T) {
	res := explore(t, `
int f(int x) {
	if (x < 100) { return 0; }
	return 1;
}`)
	if res.FeasiblePaths != 2 {
		t.Fatalf("paths = %d", res.FeasiblePaths)
	}
	// Input space [0,255]: 100 models go left, 156 go right.
	if res.InputSpace != 256 {
		t.Fatalf("input space = %v", res.InputSpace)
	}
	if res.ModelCount != 256 {
		t.Fatalf("models = %v (paths %+v)", res.ModelCount, res.Paths)
	}
	// Paths sorted by model count: 156 then 100.
	if res.Paths[0].Models != 156 || res.Paths[1].Models != 100 {
		t.Fatalf("per-path models = %+v", res.Paths)
	}
}

func TestExplorePrunesInfeasible(t *testing.T) {
	res := explore(t, `
int f(int x) {
	if (x < 10) {
		if (x > 20) { return 99; }
		return 1;
	}
	return 0;
}`)
	// The x<10 && x>20 path is infeasible.
	if res.FeasiblePaths != 2 {
		t.Fatalf("feasible = %d", res.FeasiblePaths)
	}
	if res.InfeasiblePaths == 0 {
		t.Fatal("no infeasible path recorded")
	}
	for _, p := range res.Paths {
		if p.Return == Single(99) {
			t.Fatal("infeasible return reached")
		}
	}
}

func TestExploreConstantFolding(t *testing.T) {
	// Condition is definitely true: only one path.
	res := explore(t, `
int f(void) {
	int x = 5;
	if (x > 0) { return 1; }
	return 0;
}`)
	if res.FeasiblePaths != 1 {
		t.Fatalf("paths = %d", res.FeasiblePaths)
	}
	if res.Paths[0].Return != Single(1) {
		t.Fatalf("return = %v", res.Paths[0].Return)
	}
}

func TestExploreLoopBounded(t *testing.T) {
	res := explore(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s = s + 1; n = n - 1; }
	return s;
}`)
	// The loop can exit immediately or iterate; with LoopBound 3 some paths
	// truncate, but at least one completes.
	if res.FeasiblePaths == 0 {
		t.Fatal("no feasible path through loop")
	}
	if res.TruncatedPaths == 0 {
		t.Fatal("expected truncation with unbounded loop iterations")
	}
}

func TestExploreSourceCallsAreInputs(t *testing.T) {
	res := explore(t, `
int f(void) {
	int data = read_input();
	if (data == 0) { return 1; }
	return 0;
}`)
	if res.FeasiblePaths != 2 {
		t.Fatalf("paths = %d", res.FeasiblePaths)
	}
	// The ==0 path has exactly one model.
	found := false
	for _, p := range res.Paths {
		if p.Models == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("singleton path missing: %+v", res.Paths)
	}
}

func TestExploreNestedConditionModels(t *testing.T) {
	res := explore(t, `
int f(int x) {
	if (x >= 10) {
		if (x <= 20) { return 1; }
	}
	return 0;
}`)
	// Path returning 1 has models for x in [10,20]: 11 values.
	var inner *PathRecord
	for i := range res.Paths {
		if res.Paths[i].Return == Single(1) {
			inner = &res.Paths[i]
		}
	}
	if inner == nil {
		t.Fatalf("inner path missing: %+v", res.Paths)
	}
	if inner.Models != 11 {
		t.Fatalf("inner models = %v, want 11", inner.Models)
	}
}

func TestExploreLogicalAnd(t *testing.T) {
	res := explore(t, `
int f(int x) {
	if (x >= 5 && x < 8) { return 1; }
	return 0;
}`)
	var hit *PathRecord
	for i := range res.Paths {
		if res.Paths[i].Return == Single(1) {
			hit = &res.Paths[i]
		}
	}
	if hit == nil {
		t.Fatal("conjunction path missing")
	}
	if hit.Models != 3 { // x in {5,6,7}
		t.Fatalf("models = %v, want 3", hit.Models)
	}
}

func TestExploreDivByZeroRisk(t *testing.T) {
	res := explore(t, `
int f(int x) {
	return 100 / x;
}`)
	if res.DivByZeroRisks == 0 {
		t.Fatal("division by possibly-zero input not flagged")
	}
	safe := explore(t, "int f(void) { return 100 / 5; }")
	if safe.DivByZeroRisks != 0 {
		t.Fatal("safe division flagged")
	}
}

func TestExploreCoverage(t *testing.T) {
	res := explore(t, `
int f(int x) {
	if (x > 1000) { return 1; }
	return 0;
}`)
	// Input range is [0,255] so x > 1000 is infeasible; the then-block stays
	// uncovered.
	if res.BlocksCovered >= res.BlocksTotal {
		t.Fatalf("coverage = %d/%d, expected uncovered block",
			res.BlocksCovered, res.BlocksTotal)
	}
	if res.FeasiblePaths != 1 {
		t.Fatalf("paths = %d", res.FeasiblePaths)
	}
}

func TestExplorePathBudget(t *testing.T) {
	// 2^20 paths would explode; the budget must cap exploration.
	src := "int f(int a) {\n int s = 0;\n"
	for i := 0; i < 20; i++ {
		src += "if (a > 0) { s = s + 1; } else { s = s - 1; }\n"
	}
	src += "return s;\n}"
	f := ir.MustLowerSource(src).Funcs[0]
	cfg := DefaultConfig()
	cfg.MaxPaths = 100
	res := Explore(f, cfg)
	total := res.FeasiblePaths + res.TruncatedPaths + res.InfeasiblePaths
	if total > cfg.MaxPaths+2 {
		t.Fatalf("budget exceeded: %d", total)
	}
}

func TestExploreModelsNeverExceedInputSpace(t *testing.T) {
	// With pure partition branches, total models equal the input space.
	res := explore(t, `
int f(int x) {
	if (x < 50) { return 0; }
	if (x < 150) { return 1; }
	return 2;
}`)
	if res.ModelCount != res.InputSpace {
		t.Fatalf("models %v != input space %v", res.ModelCount, res.InputSpace)
	}
}

func TestLog10Paths(t *testing.T) {
	p := ir.MustLowerSource(`
int a(int x) { if (x) { return 1; } return 0; }
int b(void) { return 2; }
`)
	got := Log10Paths(p, DefaultConfig())
	if got <= 0 {
		t.Fatalf("Log10Paths = %v", got)
	}
}

func TestExploreArrays(t *testing.T) {
	res := explore(t, `
int f(int i) {
	int a[4];
	a[0] = 7;
	a[1] = 9;
	int v = a[0];
	if (v > 100) { return 1; }
	return 0;
}`)
	// a's summary interval is [7,9]; v > 100 is infeasible.
	if res.FeasiblePaths != 1 {
		t.Fatalf("paths = %d (%+v)", res.FeasiblePaths, res.Paths)
	}
}
