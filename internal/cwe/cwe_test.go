package cwe

import (
	"strings"
	"testing"
)

func TestLookupKnown(t *testing.T) {
	e, ok := Lookup(121)
	if !ok {
		t.Fatal("CWE-121 missing")
	}
	if e.Name != "Stack-based Buffer Overflow" {
		t.Fatalf("CWE-121 name = %q", e.Name)
	}
	if e.Class != ClassMemory {
		t.Fatalf("CWE-121 class = %v", e.Class)
	}
	if !e.ManagedSafe {
		t.Fatal("CWE-121 should be ManagedSafe")
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup(99999); ok {
		t.Fatal("unknown CWE resolved")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup on unknown id did not panic")
		}
	}()
	MustLookup(424242)
}

func TestIsAHierarchy(t *testing.T) {
	cases := []struct {
		id, cat ID
		want    bool
	}{
		{121, 121, true}, // reflexive
		{121, 119, true}, // parent
		{121, 118, true}, // grandparent
		{121, 74, false}, // unrelated
		{78, 74, true},   // OS cmd injection is-a injection (via 77)
		{78, 77, true},
		{119, 121, false}, // not symmetric
	}
	for _, tc := range cases {
		if got := IsA(tc.id, tc.cat); got != tc.want {
			t.Errorf("IsA(%d, %d) = %v, want %v", tc.id, tc.cat, got, tc.want)
		}
	}
}

func TestAncestorsChain(t *testing.T) {
	got := Ancestors(121)
	if len(got) != 2 || got[0] != 119 || got[1] != 118 {
		t.Fatalf("Ancestors(121) = %v, want [119 118]", got)
	}
	if a := Ancestors(118); len(a) != 0 {
		t.Fatalf("Ancestors(root) = %v", a)
	}
	if a := Ancestors(99999); a != nil {
		t.Fatalf("Ancestors(unknown) = %v", a)
	}
}

func TestChildren(t *testing.T) {
	kids := Children(119)
	want := map[ID]bool{120: true, 121: true, 122: true, 125: true, 787: true}
	if len(kids) != len(want) {
		t.Fatalf("Children(119) = %v", kids)
	}
	for _, k := range kids {
		if !want[k] {
			t.Fatalf("unexpected child %d", k)
		}
	}
	// Children must be sorted.
	for i := 1; i < len(kids); i++ {
		if kids[i] <= kids[i-1] {
			t.Fatalf("Children not sorted: %v", kids)
		}
	}
}

func TestAllSortedAndConsistent(t *testing.T) {
	all := All()
	if len(all) < 30 {
		t.Fatalf("taxonomy too small: %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatalf("All() not sorted at %d", i)
		}
	}
	// Every parent reference must resolve.
	for _, e := range all {
		if e.Parent != 0 {
			if _, ok := Lookup(e.Parent); !ok {
				t.Errorf("CWE-%d has dangling parent %d", e.ID, e.Parent)
			}
		}
	}
}

func TestNoParentCycles(t *testing.T) {
	for _, e := range All() {
		seen := map[ID]bool{e.ID: true}
		cur := e.Parent
		for cur != 0 {
			if seen[cur] {
				t.Fatalf("cycle through CWE-%d", cur)
			}
			seen[cur] = true
			p, ok := Lookup(cur)
			if !ok {
				break
			}
			cur = p.Parent
		}
	}
}

func TestOfClass(t *testing.T) {
	mem := OfClass(ClassMemory)
	found := false
	for _, id := range mem {
		if id == 121 {
			found = true
		}
		if MustLookup(id).Class != ClassMemory {
			t.Fatalf("OfClass returned wrong class for %d", id)
		}
	}
	if !found {
		t.Fatal("CWE-121 missing from memory class")
	}
}

func TestEntryString(t *testing.T) {
	s := MustLookup(121).String()
	if !strings.Contains(s, "CWE-121") || !strings.Contains(s, "Stack-based") {
		t.Fatalf("String() = %q", s)
	}
}

func TestClassString(t *testing.T) {
	if ClassMemory.String() != "memory-safety" {
		t.Fatalf("ClassMemory = %q", ClassMemory.String())
	}
	if Class(99).String() != "other" {
		t.Fatalf("unknown class = %q", Class(99).String())
	}
}
