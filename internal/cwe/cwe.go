// Package cwe provides a self-contained subset of the Common Weakness
// Enumeration taxonomy: the entries that dominate CVE reporting, their
// parent/child structure, and the attributes the prediction model uses as
// labels (memory safety, injection class, language affinity).
//
// The paper's third example hypothesis is "does an application suffer any
// stack-based buffer overflow (CWE = 121)?"; this package supplies that
// labelling vocabulary.
package cwe

import (
	"fmt"
	"sort"
)

// ID is a CWE identifier, e.g. 121 for stack-based buffer overflow.
type ID int

// Class partitions weaknesses into the coarse families the corpus generator
// and the recommendation engine reason about.
type Class int

// Weakness classes.
const (
	ClassOther Class = iota
	ClassMemory
	ClassInjection
	ClassCrypto
	ClassAuth
	ClassInfoLeak
	ClassResource
	ClassInput
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassMemory:
		return "memory-safety"
	case ClassInjection:
		return "injection"
	case ClassCrypto:
		return "cryptography"
	case ClassAuth:
		return "authentication"
	case ClassInfoLeak:
		return "information-exposure"
	case ClassResource:
		return "resource-management"
	case ClassInput:
		return "input-validation"
	default:
		return "other"
	}
}

// Entry is one weakness type.
type Entry struct {
	ID     ID
	Name   string
	Parent ID // 0 for roots
	Class  Class
	// ManagedSafe reports whether memory-managed languages (Java, Python)
	// are structurally immune to this weakness.
	ManagedSafe bool
}

// The embedded taxonomy. Parents appear before children.
var entries = []Entry{
	{ID: 118, Name: "Incorrect Access of Indexable Resource", Class: ClassMemory, ManagedSafe: true},
	{ID: 119, Name: "Improper Restriction of Operations within the Bounds of a Memory Buffer", Parent: 118, Class: ClassMemory, ManagedSafe: true},
	{ID: 120, Name: "Buffer Copy without Checking Size of Input (Classic Buffer Overflow)", Parent: 119, Class: ClassMemory, ManagedSafe: true},
	{ID: 121, Name: "Stack-based Buffer Overflow", Parent: 119, Class: ClassMemory, ManagedSafe: true},
	{ID: 122, Name: "Heap-based Buffer Overflow", Parent: 119, Class: ClassMemory, ManagedSafe: true},
	{ID: 125, Name: "Out-of-bounds Read", Parent: 119, Class: ClassMemory, ManagedSafe: true},
	{ID: 787, Name: "Out-of-bounds Write", Parent: 119, Class: ClassMemory, ManagedSafe: true},
	{ID: 416, Name: "Use After Free", Class: ClassMemory, ManagedSafe: true},
	{ID: 415, Name: "Double Free", Parent: 416, Class: ClassMemory, ManagedSafe: true},
	{ID: 476, Name: "NULL Pointer Dereference", Class: ClassMemory},
	{ID: 190, Name: "Integer Overflow or Wraparound", Class: ClassInput},
	{ID: 191, Name: "Integer Underflow", Parent: 190, Class: ClassInput},
	{ID: 74, Name: "Improper Neutralization of Special Elements (Injection)", Class: ClassInjection},
	{ID: 77, Name: "Command Injection", Parent: 74, Class: ClassInjection},
	{ID: 78, Name: "OS Command Injection", Parent: 77, Class: ClassInjection},
	{ID: 79, Name: "Cross-site Scripting", Parent: 74, Class: ClassInjection},
	{ID: 89, Name: "SQL Injection", Parent: 74, Class: ClassInjection},
	{ID: 94, Name: "Code Injection", Parent: 74, Class: ClassInjection},
	{ID: 134, Name: "Use of Externally-Controlled Format String", Parent: 74, Class: ClassInjection, ManagedSafe: true},
	{ID: 20, Name: "Improper Input Validation", Class: ClassInput},
	{ID: 22, Name: "Path Traversal", Parent: 20, Class: ClassInput},
	{ID: 59, Name: "Improper Link Resolution Before File Access", Parent: 20, Class: ClassInput},
	{ID: 287, Name: "Improper Authentication", Class: ClassAuth},
	{ID: 288, Name: "Authentication Bypass Using an Alternate Path", Parent: 287, Class: ClassAuth},
	{ID: 306, Name: "Missing Authentication for Critical Function", Parent: 287, Class: ClassAuth},
	{ID: 352, Name: "Cross-Site Request Forgery", Parent: 287, Class: ClassAuth},
	{ID: 269, Name: "Improper Privilege Management", Class: ClassAuth},
	{ID: 264, Name: "Permissions, Privileges, and Access Controls", Class: ClassAuth},
	{ID: 284, Name: "Improper Access Control", Class: ClassAuth},
	{ID: 310, Name: "Cryptographic Issues", Class: ClassCrypto},
	{ID: 326, Name: "Inadequate Encryption Strength", Parent: 310, Class: ClassCrypto},
	{ID: 327, Name: "Use of a Broken or Risky Cryptographic Algorithm", Parent: 310, Class: ClassCrypto},
	{ID: 330, Name: "Use of Insufficiently Random Values", Parent: 310, Class: ClassCrypto},
	{ID: 200, Name: "Information Exposure", Class: ClassInfoLeak},
	{ID: 209, Name: "Information Exposure Through an Error Message", Parent: 200, Class: ClassInfoLeak},
	{ID: 362, Name: "Race Condition", Class: ClassResource},
	{ID: 367, Name: "Time-of-check Time-of-use (TOCTOU) Race Condition", Parent: 362, Class: ClassResource},
	{ID: 400, Name: "Uncontrolled Resource Consumption", Class: ClassResource},
	{ID: 401, Name: "Missing Release of Memory after Effective Lifetime", Parent: 400, Class: ClassResource, ManagedSafe: true},
	{ID: 404, Name: "Improper Resource Shutdown or Release", Parent: 400, Class: ClassResource},
	{ID: 835, Name: "Loop with Unreachable Exit Condition (Infinite Loop)", Parent: 400, Class: ClassResource},
	{ID: 502, Name: "Deserialization of Untrusted Data", Class: ClassInput},
	{ID: 611, Name: "Improper Restriction of XML External Entity Reference", Parent: 20, Class: ClassInput},
	{ID: 798, Name: "Use of Hard-coded Credentials", Class: ClassAuth},
	{ID: 369, Name: "Divide By Zero", Class: ClassInput},
	{ID: 676, Name: "Use of Potentially Dangerous Function", Class: ClassMemory, ManagedSafe: true},
}

var byID = func() map[ID]Entry {
	m := make(map[ID]Entry, len(entries))
	for _, e := range entries {
		if _, dup := m[e.ID]; dup {
			panic(fmt.Sprintf("cwe: duplicate entry %d", e.ID))
		}
		m[e.ID] = e
	}
	return m
}()

// Lookup returns the entry for id.
func Lookup(id ID) (Entry, bool) {
	e, ok := byID[id]
	return e, ok
}

// MustLookup panics if the id is unknown.
func MustLookup(id ID) Entry {
	e, ok := byID[id]
	if !ok {
		panic(fmt.Sprintf("cwe: unknown CWE-%d", id))
	}
	return e
}

// All returns every known entry, sorted by ID.
func All() []Entry {
	out := append([]Entry(nil), entries...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsA reports whether id is cat or a (transitive) descendant of cat.
func IsA(id, cat ID) bool {
	for id != 0 {
		if id == cat {
			return true
		}
		e, ok := byID[id]
		if !ok {
			return false
		}
		id = e.Parent
	}
	return false
}

// Ancestors returns the chain from id's parent to its root, nearest first.
func Ancestors(id ID) []ID {
	var out []ID
	e, ok := byID[id]
	if !ok {
		return nil
	}
	for e.Parent != 0 {
		out = append(out, e.Parent)
		parent, ok := byID[e.Parent]
		if !ok {
			break
		}
		e = parent
	}
	return out
}

// Children returns the direct children of id, sorted by ID.
func Children(id ID) []ID {
	var out []ID
	for _, e := range entries {
		if e.Parent == id {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OfClass returns all entry IDs belonging to the class, sorted.
func OfClass(c Class) []ID {
	var out []ID
	for _, e := range entries {
		if e.Class == c {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders "CWE-121: Stack-based Buffer Overflow".
func (e Entry) String() string {
	return fmt.Sprintf("CWE-%d: %s", e.ID, e.Name)
}
