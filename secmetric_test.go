package secmetric

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/langgen"
)

var (
	once       sync.Once
	facadeCorp *Corpus
	facadeMdl  *Model
	setupErr   error
)

func setup(t *testing.T) (*Corpus, *Model) {
	t.Helper()
	once.Do(func() {
		facadeCorp, setupErr = DefaultCorpus()
		if setupErr != nil {
			return
		}
		facadeMdl, setupErr = Train(facadeCorp, TrainConfig{Kind: KindLogistic, Folds: 5, Seed: 12})
	})
	if setupErr != nil {
		t.Fatal(setupErr)
	}
	return facadeCorp, facadeMdl
}

func TestFacadeEndToEnd(t *testing.T) {
	_, model := setup(t)
	spec := langgen.DefaultSpec()
	spec.Seed = 404
	tree := langgen.Generate(spec)
	fv := AnalyzeTree(tree)
	rep := model.Score(tree.Name, fv)
	if rep.RiskScore < 0 || rep.RiskScore > 100 {
		t.Fatalf("risk score = %v", rep.RiskScore)
	}
	if len(rep.Risks) != 5 {
		t.Fatalf("risks = %d", len(rep.Risks))
	}
}

func TestFacadeAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	src := `
int main(void) {
	char buf[8];
	gets(buf);
	return 0;
}`
	if err := os.WriteFile(filepath.Join(dir, "main.c"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fv, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fv["kloc"] <= 0 {
		t.Fatal("kloc missing")
	}
	if fv["lint_warnings"] == 0 {
		t.Fatal("gets() not flagged")
	}
}

func TestFacadeAnalyzeDirWithCache(t *testing.T) {
	dir := t.TempDir()
	src := `
int copy(int dst, int n) {
	int data = read_input();
	memmove(dst, data, n);
	return n;
}`
	if err := os.WriteFile(filepath.Join(dir, "io.mc"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := AnalyzeConfig{Jobs: 2, CacheDir: filepath.Join(t.TempDir(), "cache")}
	cold, err := AnalyzeDirWith(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := AnalyzeDirWith(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range cold {
		if warm[k] != v {
			t.Fatalf("cached analysis drifted: %s = %v, want %v", k, warm[k], v)
		}
	}
	// The cache directory holds at least one persisted entry.
	entries, err := os.ReadDir(cfg.CacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir empty (err=%v)", err)
	}
}

func TestFacadeAnalyzeTreeWithMatchesAnalyzeTree(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Seed = 99
	tree := langgen.Generate(spec)
	plain := AnalyzeTree(tree)
	cfgd, err := AnalyzeTreeWith(context.Background(), tree, AnalyzeConfig{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range plain {
		if cfgd[k] != v {
			t.Fatalf("AnalyzeTreeWith drifted on %s: %v vs %v", k, cfgd[k], v)
		}
	}
}

func TestFacadeAnalyzeTreeWithRejectsEmptyTree(t *testing.T) {
	// Mirrors AnalyzeDirWith's empty-directory rejection: the two entry
	// points must agree instead of one silently producing a hollow vector.
	empty := &Tree{Name: "empty"}
	if _, err := AnalyzeTreeWith(context.Background(), empty, AnalyzeConfig{}); err == nil {
		t.Fatal("AnalyzeTreeWith accepted an empty tree")
	}
	if _, _, err := AnalyzeTreeWithDiagnostics(context.Background(), empty, AnalyzeConfig{}); err == nil {
		t.Fatal("AnalyzeTreeWithDiagnostics accepted an empty tree")
	}
}

func TestFacadeAnalyzeDirWithDiagnostics(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"good.mc": "int main(void) { return 0; }\n",
		"bad.c":   "int main( { this does not parse\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cfg := AnalyzeConfig{
		CacheDir:    filepath.Join(t.TempDir(), "cache"),
		FileTimeout: time.Minute,
	}
	_, cold, err := AnalyzeDirWithDiagnostics(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Files) != 2 {
		t.Fatalf("diagnostics cover %d files, want 2", len(cold.Files))
	}
	if got := cold.Counts()[StatusParseSkip]; got != 1 {
		t.Fatalf("parse-skip count = %d, want 1 (bad.c)", got)
	}
	if cold.CacheMisses != 2 || cold.CacheHits != 0 {
		t.Fatalf("cold cache traffic = %d hits / %d misses, want 0 / 2", cold.CacheHits, cold.CacheMisses)
	}
	_, warm, err := AnalyzeDirWithDiagnostics(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 2 || warm.Counts()[StatusCacheHit] != 2 {
		t.Fatalf("warm run = %v with %d hit(s), want all cache hits", warm.Counts(), warm.CacheHits)
	}
}

func TestFacadeAnalyzeDirEmpty(t *testing.T) {
	if _, err := AnalyzeDir(t.TempDir()); err == nil {
		t.Fatal("empty dir analyzed")
	}
	if _, err := AnalyzeDir("/no/such/dir"); err == nil {
		t.Fatal("missing dir analyzed")
	}
}

func TestFacadeModelFileRoundTrip(t *testing.T) {
	corp, model := setup(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(model, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	a := corp.Apps[0]
	orig := model.Score(a.App.Name, a.Features)
	rest := loaded.Score(a.App.Name, a.Features)
	if orig.RiskScore != rest.RiskScore {
		t.Fatalf("scores differ after file round trip: %v vs %v",
			orig.RiskScore, rest.RiskScore)
	}
}

func TestFacadeSaveModelAtomic(t *testing.T) {
	_, model := setup(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")

	// A save into a missing directory fails and leaves nothing behind at
	// the target path.
	if err := SaveModel(model, filepath.Join(dir, "nope", "model.json")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}

	// A successful save leaves exactly the target file — no .model-* temp
	// residue from the write-then-rename.
	if err := SaveModel(model, path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "model.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir holds %v, want exactly model.json", names)
	}

	// Overwriting an existing model works and the result loads.
	if err := SaveModel(model, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(path); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLoadModelRefusesSchemaMismatch(t *testing.T) {
	_, model := setup(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(model, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dto map[string]json.RawMessage
	if err := json.Unmarshal(raw, &dto); err != nil {
		t.Fatal(err)
	}
	delete(dto, "schema")
	stale, err := json.Marshal(dto)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModel(path)
	if !errors.Is(err, ErrFeatureSchema) {
		t.Fatalf("err = %v, want ErrFeatureSchema", err)
	}
}

func TestFacadeCompare(t *testing.T) {
	_, model := setup(t)
	clean := langgen.DefaultSpec()
	clean.Seed = 777
	clean.VulnDensity = 0
	dirty := clean
	dirty.VulnDensity = 1
	cleanFV := AnalyzeTree(langgen.Generate(clean))
	dirtyFV := AnalyzeTree(langgen.Generate(dirty))
	cmp := model.Compare("clean", cleanFV, "dirty", dirtyFV)
	if cmp.DeltaRisk <= 0 {
		t.Fatalf("injected vulnerabilities lowered risk: %s", cmp.Verdict())
	}
}
