package secmetric

// The benchmark harness: one benchmark per figure and table in the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each benchmark prints
// the regenerated artifact once (the rows/series the paper reports) and
// then times the underlying computation; `go test -bench=. -benchmem`
// regenerates everything.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/langgen"
	"repro/internal/survey"
)

// printOnce gates the table output so repeated benchmark iterations do not
// spam the log.
var printOnce sync.Map

func printTable(name, table string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, table)
	}
}

// BenchmarkFigure1Survey regenerates the evaluation-method survey.
func BenchmarkFigure1Survey(b *testing.B) {
	r := experiments.Figure1()
	printTable("Figure 1", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		papers := survey.GenerateCorpus(1)
		counts := survey.Run(papers)
		if counts.Total(survey.MethodLoC) != survey.TotalLoC {
			b.Fatal("survey totals drifted")
		}
	}
}

// BenchmarkFigure2LoC regenerates the LoC-vs-vulnerabilities regression.
func BenchmarkFigure2LoC(b *testing.B) {
	r, err := experiments.Figure2()
	if err != nil {
		b.Fatal(err)
	}
	printTable("Figure 2", r.Table)
	b.ReportMetric(r.Fit.Slope, "slope")
	b.ReportMetric(r.Fit.R2*100, "R2pct")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Generate(corpus.DefaultParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Cyclomatic regenerates the cyclomatic-complexity scatter.
func BenchmarkFigure3Cyclomatic(b *testing.B) {
	r, err := experiments.Figure3()
	if err != nil {
		b.Fatal(err)
	}
	printTable("Figure 3", r.Table)
	b.ReportMetric(r.Fit.R2*100, "R2pct")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2, err := experiments.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if r2.Fit.R2 <= 0 {
			b.Fatal("correlation lost")
		}
	}
}

// BenchmarkFigure4Training regenerates the pipeline evaluation (train +
// 10-fold CV per hypothesis) — the paper's Figure 4 turned into numbers.
func BenchmarkFigure4Training(b *testing.B) {
	r, err := experiments.Figure4(core.KindForest, 10, 42)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Figure 4", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(core.KindLogistic, 5, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1CorpusStats regenerates the §5.1 corpus statistics.
func BenchmarkTable1CorpusStats(b *testing.B) {
	r, err := experiments.Table1()
	if err != nil {
		b.Fatal(err)
	}
	printTable("Table 1 (§5.1 in-text)", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ShinReplication regenerates the §4 vulnerable-file
// prediction replication.
func BenchmarkTable2ShinReplication(b *testing.B) {
	r, err := experiments.Table2(150, 7)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Table 2 (§4 in-text, Shin et al.)", r.Table)
	b.ReportMetric(r.Recall, "recall")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(60, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLoCOnly times the full-vs-LoC-only comparison.
func BenchmarkAblationLoCOnly(b *testing.B) {
	r, err := experiments.AblationLoCOnly(3)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Ablation A1", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationLoCOnly(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClassifiers compares the classifier families.
func BenchmarkAblationClassifiers(b *testing.B) {
	r, err := experiments.AblationClassifiers(5)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Ablation A2", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClassifiers(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFeatureSelection sweeps the info-gain filter.
func BenchmarkAblationFeatureSelection(b *testing.B) {
	r, err := experiments.AblationFeatureSelection(11)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Ablation A3", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFeatureSelection(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSymexecBound sweeps the symbolic-execution loop bound.
func BenchmarkAblationSymexecBound(b *testing.B) {
	r, err := experiments.AblationSymexecBound(13)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Ablation A4", r.Table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSymexecBound(13); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionCount evaluates the vulnerability-count regressor.
func BenchmarkRegressionCount(b *testing.B) {
	r, err := experiments.Regression(17)
	if err != nil {
		b.Fatal(err)
	}
	printTable("Count regression", r.Table)
	b.ReportMetric(r.FullR2, "fullR2")
	b.ReportMetric(r.LoCR2, "locR2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Regression(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTestbedExtraction times the end-to-end feature extraction over a
// generated source tree — the per-commit cost a developer pays in §5.3.
func BenchmarkTestbedExtraction(b *testing.B) {
	spec := langgen.DefaultSpec()
	spec.Files = 8
	spec.FuncsPerFile = 10
	tree := langgen.Generate(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fv := AnalyzeTree(tree)
		if fv["kloc"] <= 0 {
			b.Fatal("extraction failed")
		}
	}
}

// BenchmarkAnalyzeDirWarmCache times AnalyzeDir with a warm feature cache
// — the steady-state per-commit cost when no file changed — and reports
// the cold-over-warm speedup.
func BenchmarkAnalyzeDirWarmCache(b *testing.B) {
	spec := langgen.DefaultSpec()
	spec.Files = 8
	spec.FuncsPerFile = 10
	tree := langgen.Generate(spec)
	dir := b.TempDir()
	for _, f := range tree.Files {
		p := filepath.Join(dir, filepath.FromSlash(f.Path))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(f.Content), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	cfg := AnalyzeConfig{CacheDir: filepath.Join(b.TempDir(), "featcache")}
	start := time.Now()
	if _, err := AnalyzeDirWith(context.Background(), dir, cfg); err != nil {
		b.Fatal(err)
	}
	coldDur := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fv, err := AnalyzeDirWith(context.Background(), dir, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if fv["kloc"] <= 0 {
			b.Fatal("extraction failed")
		}
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(coldDur.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "cold/warm")
	}
}

// BenchmarkScore times a single model scoring call (the interactive path).
func BenchmarkScore(b *testing.B) {
	c, err := experiments.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	model, err := Train(c, TrainConfig{Kind: KindLogistic, Folds: 3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	fv := c.Apps[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := model.Score("bench", fv)
		if rep.RiskScore < 0 {
			b.Fatal("bad score")
		}
	}
}
