// Command trainctl trains the prediction model on the built-in corpus,
// reports per-hypothesis cross-validation quality, and writes the trained
// model to disk for the secmetric tool.
//
// Usage:
//
//	trainctl [-kind forest] [-folds 10] [-topk 0] [-seed 17] [-jobs 0] [-out model.json] [-format json|binary|auto]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	secmetric "repro"
	"repro/internal/core"
	"repro/internal/ml"
)

func main() {
	// Ctrl-C / SIGTERM cancels the training pools cleanly instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "trainctl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	kind := flag.String("kind", string(core.KindForest),
		"classifier kind: zeror|naivebayes|logistic|tree|forest|knn|boost")
	folds := flag.Int("folds", 10, "cross-validation folds")
	topk := flag.Int("topk", 0, "keep only the top-k features by information gain (0 = all)")
	seed := flag.Uint64("seed", 17, "training seed")
	jobs := flag.Int("jobs", 0, "training worker pool size (0 = all cores; the model is identical for any value)")
	out := flag.String("out", "model.json", "model output path")
	format := flag.String("format", "auto", "model encoding: json|binary|auto (auto picks binary for a .bin path)")
	arff := flag.String("arff", "", "also export the many_vulns training set as Weka ARFF")
	tune := flag.Bool("tune", false, "grid-search random-forest hyperparameters first")
	flag.Parse()

	save := secmetric.SaveModel
	switch *format {
	case "json":
	case "binary":
		save = secmetric.SaveModelBinary
	case "auto":
		if strings.HasSuffix(*out, ".bin") {
			save = secmetric.SaveModelBinary
		}
	default:
		return fmt.Errorf("unknown -format %q (want json, binary, or auto)", *format)
	}
	if _, err := core.NewClassifier(core.ModelKind(*kind)); err != nil {
		return err
	}
	fmt.Println("generating corpus...")
	c, err := secmetric.DefaultCorpus()
	if err != nil {
		return err
	}
	tb := core.NewTestbed(c)
	if *arff != "" {
		ds, err := tb.DatasetFor(core.HypManyVulns)
		if err != nil {
			return err
		}
		f, err := os.Create(*arff)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ml.WriteARFF(f, "secmetric-many-vulns", ds); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d instances, %d attributes)\n", *arff, ds.N(), ds.P())
	}
	if *tune {
		fmt.Println("tuning random-forest hyperparameters (10-fold CV on many_vulns)...")
		results, err := core.TuneForest(tb, core.HypManyVulns, nil, 10, *seed)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderTuning(results))
	}
	cfg := secmetric.TrainConfig{
		Kind:        core.ModelKind(*kind),
		Folds:       *folds,
		TopFeatures: *topk,
		Seed:        *seed,
		Jobs:        *jobs,
	}
	fmt.Printf("training %s with %d-fold cross validation...\n", *kind, *folds)
	model, err := secmetric.TrainContext(ctx, c, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %6s | %s\n", "hypothesis", "base", "cross-validation")
	for _, hm := range model.Hypotheses {
		fmt.Printf("%-14s %6.2f | %s\n", hm.Hypothesis.Name, hm.BaseRate, hm.CV)
	}
	fmt.Printf("count regression: RMSE=%.3f MAE=%.3f R2=%.3f (log10 space)\n",
		model.CountEval.RMSE, model.CountEval.MAE, model.CountEval.R2)
	if err := save(model, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
