package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func serveHardened(t *testing.T, readHeader, idle time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := hardenedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, "ok")
	}), readHeader, idle)
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String()
}

// TestSlowLorisHeadersCutOff is the slow-client regression: a connection
// that trickles its request headers is closed once ReadHeaderTimeout
// elapses, instead of holding a server goroutine hostage indefinitely.
func TestSlowLorisHeadersCutOff(t *testing.T) {
	addr := serveHardened(t, 150*time.Millisecond, time.Minute)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A request line but never the terminating blank line: headers stay
	// forever incomplete from the server's point of view.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Drip: ")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("server answered a request whose headers never completed")
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server still holding the slow-loris connection after ReadHeaderTimeout")
	}
	// err is io.EOF or a reset: the server cut the connection. Good.
}

// TestCompleteRequestWithinWindow is the other half: a prompt client on the
// same hardened server is served normally.
func TestCompleteRequestWithinWindow(t *testing.T) {
	addr := serveHardened(t, 150*time.Millisecond, time.Minute)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "200") {
		t.Fatalf("status line = %q, want 200", line)
	}
}

// TestPprofMuxServesIndex checks the private pprof mux answers without
// touching http.DefaultServeMux.
func TestPprofMuxServesIndex(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(pprofMux())
	go hs.Serve(ln)
	defer hs.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
}
