// Command secmetricd is the clairvoyance-as-a-service scoring daemon: it
// loads one or more trained models at startup and serves the paper's
// "evaluate every change" loop (§5.3, Fig. 4) over HTTP, so developer
// tooling queries a long-lived process instead of paying model load and
// corpus training per invocation.
//
// Endpoints:
//
//	POST /v1/score          security report of a JSON-encoded source tree
//	POST /v1/analyze        raw code-property vector
//	POST /v1/analyze/stream NDJSON per-file progress, then the batch response
//	POST /v1/findings       CWE-mapped findings stream
//	POST /v1/findings/stream NDJSON per-file findings, then the batch report
//	POST /v1/compare        risk delta between two versions (the CI gate)
//	POST /v1/delta          apply a changeset to a per-repo session, score the delta
//	POST /v1/rank           function-level risk ranking
//	POST /v1/query          query the -db findings history (404 without -db)
//	POST /v1/models/reload  re-read the model sources, swap atomically
//	GET  /healthz           liveness plus registry summary
//	GET  /metrics           Prometheus text exposition
//
// Usage:
//
//	secmetricd [-addr :8321] [-model m.json ...] [-model-dir dir]
//	           [-train-default] [-workers N] [-queue N]
//	           [-request-timeout d] [-jobs N] [-file-timeout d]
//	           [-cache dir] [-db findings.db] [-addr-file f]
//	           [-drain-timeout d] [-max-body-bytes N] [-pprof addr]
//	           [-sessions N] [-session-ttl d]
//
// With -db, every /v1/score, /v1/compare, and /v1/rank request appends a
// run (tree name, CWE-tagged findings, score where the endpoint computes
// one) to the embedded findings history at that path, and POST /v1/query
// serves the internal/store query language over it.
//
// With -route URL1,URL2,... the process runs as a consistent-hash shard
// router over those secmetricd backends instead of serving analyses
// itself: requests hash by repository (tree name, repo_id, or a query's
// repo filter) so delta sessions and -db history stay shard-local, down
// backends are ejected by active health probes (-health-interval) and
// re-admitted on recovery, and backend responses — 429, 504, 409 included
// — are forwarded verbatim.
//
// With -pprof, a second listener serves net/http/pprof on its own mux —
// profiling never shares a port (or an exposure decision) with the scoring
// API. Request bodies above -max-body-bytes are rejected with 413.
//
// Model sources: every -model file registers under its basename (or an
// explicit NAME=PATH), and every *.json in -model-dir registers under its
// basename. With -train-default and no sources, a logistic model is
// trained on the built-in corpus at startup. A model whose feature schema
// does not match this build is refused at startup and at reload.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	secmetric "repro"
	"repro/internal/featcache"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/store/findex"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("secmetricd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8321", "listen address (host:port; port 0 picks an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file after listening (for ephemeral ports)")
		modelDir     = flag.String("model-dir", "", "directory of *.json models, each registered under its basename")
		trainDefault = flag.Bool("train-default", false, "train a logistic model on the built-in corpus when no model source is given")
		workers      = flag.Int("workers", 0, "max concurrent analyses (0 = all cores)")
		queue        = flag.Int("queue", 64, "max admitted requests waiting for a worker; overflow is rejected with 429")
		reqTimeout   = flag.Duration("request-timeout", 2*time.Minute, "hard per-request deadline; requests may tighten it via timeout_ms")
		jobs         = flag.Int("jobs", 0, "per-request extraction pool width (0 = all cores)")
		fileTimeout  = flag.Duration("file-timeout", 0, "per-file deep-analysis deadline (0 = unbounded)")
		cacheDir     = flag.String("cache", "", "persistent feature-cache directory shared by all requests (empty = in-memory)")
		dbPath       = flag.String("db", "", "findings-history database; records score/compare/rank runs and enables /v1/query (empty = disabled)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
		maxBody      = flag.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "largest accepted request body in bytes; oversized bodies are rejected with 413")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
		maxSessions  = flag.Int("sessions", server.DefaultMaxSessions, "max live /v1/delta repo sessions; least-recently-used beyond this are evicted")
		sessionTTL   = flag.Duration("session-ttl", server.DefaultSessionTTL, "evict /v1/delta sessions idle longer than this")
		route        = flag.String("route", "", "run as a shard router over this comma-separated backend URL list instead of serving analyses")
		healthIvl    = flag.Duration("health-interval", router.DefaultHealthInterval, "router mode: interval between active backend health probes")
	)
	modelFiles := map[string]string{}
	flag.Func("model", "model file to serve, repeatable; `path` or NAME=PATH (name defaults to the basename)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok {
			path = v
			name = strings.TrimSuffix(filepath.Base(v), ".json")
		}
		if name == "" || path == "" {
			return fmt.Errorf("bad -model %q", v)
		}
		if _, dup := modelFiles[name]; dup {
			return fmt.Errorf("duplicate model name %q", name)
		}
		modelFiles[name] = path
		return nil
	})
	flag.Parse()

	if *route != "" {
		// Router mode: no models, no cache, no history — just the ring.
		rt, err := router.New(router.Config{
			Backends:       strings.Split(*route, ","),
			HealthInterval: *healthIvl,
			MaxBodyBytes:   *maxBody,
		})
		if err != nil {
			return err
		}
		defer rt.Close()
		log.Printf("routing across %d backend(s): %s", len(rt.Backends()), strings.Join(rt.Backends(), ", "))
		return serveAndDrain(rt.Handler(), *addr, *addrFile, *drainTimeout)
	}

	cache, err := featcache.Open(*cacheDir)
	if err != nil {
		return err
	}

	var history *findex.Store
	if *dbPath != "" {
		history, err = findex.Open(*dbPath)
		if err != nil {
			return fmt.Errorf("open -db %s: %w", *dbPath, err)
		}
		// Closed after the drain below, so the final checkpoint covers every
		// recorded run.
		defer func() {
			if err := history.Close(); err != nil {
				log.Printf("close -db: %v", err)
			}
		}()
		log.Printf("recording findings history to %s", *dbPath)
	}

	reg := server.NewRegistry(*modelDir, modelFiles)
	switch {
	case len(modelFiles) > 0 || *modelDir != "":
		snap, err := reg.Load()
		if err != nil {
			return err
		}
		log.Printf("serving %d model(s): %s (default %q)",
			len(snap.Models), strings.Join(snap.Names(), ", "), snap.Default)
	case *trainDefault:
		log.Printf("no model source; training the default logistic model on the built-in corpus...")
		c, err := secmetric.DefaultCorpus()
		if err != nil {
			return err
		}
		m, err := secmetric.Train(c, secmetric.TrainConfig{Kind: secmetric.KindLogistic, Folds: 5, Seed: 17, Jobs: *jobs})
		if err != nil {
			return err
		}
		reg.Register("default", m)
		log.Printf("trained and registered model %q", "default")
	default:
		return errors.New("no model source: pass -model, -model-dir, or -train-default")
	}

	srv := server.New(reg, server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		AnalyzeJobs:    *jobs,
		FileTimeout:    *fileTimeout,
		Cache:          cache,
		MaxBodyBytes:   *maxBody,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		History:        history,
	})

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		log.Printf("pprof listening on %s", pln.Addr())
		ps := newHTTPServer(pprofMux())
		defer ps.Close()
		go func() {
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	return serveAndDrain(srv.Handler(), *addr, *addrFile, *drainTimeout)
}

// serveAndDrain runs one hardened HTTP server (daemon or router mode)
// until SIGINT/SIGTERM, then drains: the listener closes, in-flight
// requests finish bounded by drainTimeout, and the process exits cleanly.
func serveAndDrain(h http.Handler, addr, addrFile string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		// Write-then-rename so a poller never reads a half-written address.
		tmp := addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, addrFile); err != nil {
			return err
		}
	}
	log.Printf("listening on %s", bound)

	hs := newHTTPServer(h)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining in-flight requests (up to %v)...", drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("drained cleanly")
	return nil
}

// newHTTPServer wraps a handler in an http.Server with slow-client
// protections: a client that trickles its request headers (slow loris) is
// cut off by ReadHeaderTimeout, and idle keep-alive connections are
// reclaimed by IdleTimeout. Body reads are not bounded here — the
// per-request deadline and -max-body-bytes own that — so a legitimately
// large tree upload on a slow link still goes through.
func newHTTPServer(h http.Handler) *http.Server {
	return hardenedServer(h, 10*time.Second, 2*time.Minute)
}

func hardenedServer(h http.Handler, readHeader, idle time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeader,
		IdleTimeout:       idle,
	}
}

// pprofMux serves the net/http/pprof handlers on a private mux, so enabling
// profiling never touches http.DefaultServeMux or the API listener.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
