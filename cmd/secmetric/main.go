// Command secmetric is the developer-facing tool of §5.3: analyze a source
// tree, score it against a trained model, and compare two versions.
//
// Usage:
//
//	secmetric analyze  [-diag] [-json] [-trace f] [-slowest N] [-history db] <dir>  print the code-property vector
//	secmetric score    [-model m.json] [-json] <dir>  print the security report
//	secmetric compare  [-model m.json] [-incremental] <old> <new>  print the risk delta
//	secmetric focus    [-model m.json] [-budget N] <dir>  apportion deep analysis
//	secmetric rank     [-top N] [-json] [-explain] <dir>  rank functions by risk
//	secmetric findings [-min sev] [-json] [-history db] <dir>   print the CWE-tagged findings
//	secmetric query    [-db db] [-explain] [-full-scan] [-json] "<expr>"  query the findings history
//	secmetric image    [-model m.json] <manifest.json>  whole-image evaluation
//
// Every analyzing subcommand accepts -jobs N (worker-pool bound), -cache dir
// (incremental feature cache), and -file-timeout d (per-file deep-analysis
// deadline; files that exceed it degrade to base metrics). Interrupting the
// process (Ctrl-C) cancels the analysis pool cleanly.
//
// With -history db, findings and analyze append the run's CWE-tagged
// findings to the embedded time-series database at that path; `secmetric
// query` searches it with the internal/store query language, e.g.
//
//	secmetric query -db findings.db "cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20"
//
// Without -model, a model is trained on the built-in corpus first (slower,
// but zero-setup).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	secmetric "repro"
	"repro/internal/metrics"
	"repro/internal/store/findex"
	"repro/internal/system"
	"repro/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "secmetric:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return usage()
	}
	switch args[0] {
	case "analyze":
		return cmdAnalyze(ctx, args[1:])
	case "score":
		return cmdScore(ctx, args[1:])
	case "compare":
		return cmdCompare(ctx, args[1:])
	case "focus":
		return cmdFocus(args[1:])
	case "rank":
		return cmdRank(ctx, args[1:])
	case "hotspots":
		// Deprecated alias: hotspots' heuristic scorer was folded into the
		// function-level ranking engine.
		fmt.Fprintln(os.Stderr, "secmetric: `hotspots` is deprecated; forwarding to `rank`")
		return cmdRank(ctx, args[1:])
	case "findings":
		return cmdFindings(args[1:])
	case "query":
		return cmdQuery(args[1:])
	case "image":
		return cmdImage(ctx, args[1:])
	case "bench":
		return cmdBench(args[1:])
	default:
		return usage()
	}
}

func usage() error {
	return fmt.Errorf("usage: secmetric {analyze [-diag] [-json] [-trace f] [-slowest N] [-history db] <dir> | score [-model m.json] [-json] <dir> | compare [-model m.json] [-incremental] <old> <new> | focus [-model m.json] [-budget N] <dir> | rank [-top N] [-json] [-explain] [-vcs-seed N] <dir> | findings [-min sev] [-json] [-history db] <dir> | query [-db db] [-explain] [-full-scan] [-json] \"<expr>\" | image [-model m.json] <manifest.json> | bench [-quick] [-rev r] [-out f] [-against baseline.json]} [-jobs N] [-cache dir] [-file-timeout d]")
}

// analyzeOpts registers the shared extraction flags (-jobs, -cache,
// -file-timeout) on a subcommand's flag set and returns the config they
// populate.
func analyzeOpts(fs *flag.FlagSet) *secmetric.AnalyzeConfig {
	cfg := &secmetric.AnalyzeConfig{}
	fs.IntVar(&cfg.Jobs, "jobs", 0, "deep-analysis worker pool size (0 = all cores)")
	fs.StringVar(&cfg.CacheDir, "cache", "", "persistent feature-cache directory (analyses skip unchanged files)")
	fs.DurationVar(&cfg.FileTimeout, "file-timeout", 0, "per-file deep-analysis deadline (0 = unbounded); files that exceed it degrade to base metrics")
	return cfg
}

func cmdRank(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	top := fs.Int("top", 10, "number of functions to list (0 = all)")
	asJSON := fs.Bool("json", false, "emit the ranking as JSON (for CI integration)")
	explain := fs.Bool("explain", false, "list the features driving each function's vulnerability score")
	jobs := fs.Int("jobs", 0, "per-file analysis worker pool size (0 = all cores)")
	vcsSeed := fs.Uint64("vcs-seed", 0, "seed for synthetic VCS process metrics (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("rank needs exactly one directory")
	}
	cfg := secmetric.RankConfig{Jobs: *jobs, Top: *top}
	if *vcsSeed != 0 {
		cfg.VCS = secmetric.NewVCSGenerator(*vcsSeed)
	}
	ranking, err := secmetric.RankDir(ctx, fs.Arg(0), cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(ranking)
	}
	fmt.Print(ranking.Format(*explain))
	return nil
}

// recordHistory appends one run to the findings history at dbPath. The
// full (unfiltered) report is recorded even when the printout is filtered,
// so the history stays complete.
func recordHistory(dbPath, repo, source string, rep *secmetric.FindingsReport) error {
	s, err := findex.Open(dbPath)
	if err != nil {
		return err
	}
	seq, err := s.Append(findex.NewRun(repo, source, rep))
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("record history: %w", err)
	}
	fmt.Fprintf(os.Stderr, "recorded run %s/%d in %s\n", repo, seq, dbPath)
	return nil
}

func cmdFindings(args []string) error {
	fs := flag.NewFlagSet("findings", flag.ContinueOnError)
	minSev := fs.String("min", "info", "lowest severity to report (info|low|medium|high|critical)")
	asJSON := fs.Bool("json", false, "emit the findings as JSON (for CI integration)")
	history := fs.String("history", "", "append this run to the findings-history database at `path`")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("findings needs exactly one directory")
	}
	sev, err := secmetric.ParseSeverity(*minSev)
	if err != nil {
		return err
	}
	rep, err := secmetric.CollectFindingsDir(fs.Arg(0))
	if err != nil {
		return err
	}
	if *history != "" {
		if err := recordHistory(*history, fs.Arg(0), "findings", rep); err != nil {
			return err
		}
	}
	rep = rep.MinSeverity(sev)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	if rep.Total() == 0 {
		fmt.Printf("no findings at or above severity %s in %s\n", sev, fs.Arg(0))
		return nil
	}
	fmt.Print(rep)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dbPath := fs.String("db", "findings.db", "findings-history database to search")
	explain := fs.Bool("explain", false, "print the planner's access-path decision before the results")
	fullScan := fs.Bool("full-scan", false, "disable the index planner and filter every run (parity check)")
	asJSON := fs.Bool("json", false, "emit the matching runs as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("query takes one quoted expression (or none for all runs)")
	}
	src := ""
	if fs.NArg() == 1 {
		src = fs.Arg(0)
	}
	s, err := findex.Open(*dbPath)
	if err != nil {
		return err
	}
	defer s.Close()
	runs, ex, err := s.QueryString(src, findex.Options{ForceFullScan: *fullScan})
	if err != nil {
		return err
	}
	if *explain {
		fmt.Fprintln(os.Stderr, ex)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(runs)
	}
	if len(runs) == 0 {
		fmt.Printf("no runs match %q in %s\n", src, *dbPath)
		return nil
	}
	fmt.Printf("%-24s %5s  %-20s %-8s  %8s %6s  %s\n", "REPO", "SEQ", "TIME", "SOURCE", "SEVERITY", "TOTAL", "SCORE")
	for _, r := range runs {
		score := "-"
		if r.HasScore {
			score = fmt.Sprintf("%.3f", r.Score)
		}
		sev := "-"
		if r.Total > 0 {
			sev = r.MaxSeverity.String()
		}
		fmt.Printf("%-24s %5d  %-20s %-8s  %8s %6d  %s\n",
			r.Repo, r.Seq, time.Unix(r.Time, 0).UTC().Format("2006-01-02T15:04:05Z"),
			r.Source, sev, r.Total, score)
	}
	return nil
}

// imageManifest is the JSON deployment descriptor for whole-image
// evaluation.
type imageManifest struct {
	Name       string `json:"name"`
	Components []struct {
		Name       string   `json:"name"`
		Dir        string   `json:"dir"`
		Exposure   string   `json:"exposure"` // internet | internal | local
		Privileged bool     `json:"privileged"`
		DependsOn  []string `json:"depends_on"`
	} `json:"components"`
}

func cmdImage(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("image", flag.ContinueOnError)
	modelPath := fs.String("model", "", "trained model file (from trainctl)")
	acfg := analyzeOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("image needs exactly one manifest file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	var man imageManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if len(man.Components) == 0 {
		return fmt.Errorf("manifest has no components")
	}
	model, err := loadOrTrain(*modelPath)
	if err != nil {
		return err
	}
	img := &secmetric.SystemImage{Name: man.Name}
	for _, c := range man.Components {
		fv, err := secmetric.AnalyzeDirWith(ctx, c.Dir, *acfg)
		if err != nil {
			return fmt.Errorf("component %s: %w", c.Name, err)
		}
		exposure, err := parseExposure(c.Exposure)
		if err != nil {
			return fmt.Errorf("component %s: %w", c.Name, err)
		}
		img.Components = append(img.Components, secmetric.SystemComponent{
			Name:       c.Name,
			Report:     model.Score(c.Name, fv),
			Exposure:   exposure,
			Privileged: c.Privileged,
			DependsOn:  c.DependsOn,
		})
	}
	ev, err := secmetric.EvaluateImage(img)
	if err != nil {
		return err
	}
	fmt.Print(ev)
	return nil
}

func parseExposure(s string) (system.Exposure, error) {
	switch s {
	case "internet", "":
		return secmetric.ExposureInternet, nil
	case "internal":
		return secmetric.ExposureInternal, nil
	case "local":
		return secmetric.ExposureLocal, nil
	default:
		return 0, fmt.Errorf("unknown exposure %q", s)
	}
}

func cmdFocus(args []string) error {
	fs := flag.NewFlagSet("focus", flag.ContinueOnError)
	modelPath := fs.String("model", "", "trained model file (from trainctl)")
	budget := fs.Int("budget", 100, "deep-analysis budget units to apportion")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("focus needs exactly one directory")
	}
	tree, err := metrics.LoadTree(fs.Arg(0))
	if err != nil {
		return err
	}
	model, err := loadOrTrain(*modelPath)
	if err != nil {
		return err
	}
	plan, err := model.FocusFiles(tree, *budget)
	if err != nil {
		return err
	}
	fmt.Print(plan)
	return nil
}

func cmdAnalyze(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	diag := fs.Bool("diag", false, "print per-file analysis diagnostics after the vector")
	asJSON := fs.Bool("json", false, "emit the vector (and -diag diagnostics) as JSON")
	traceOut := fs.String("trace", "", "write a Chrome trace_event profile of the run to this file (open in Perfetto / chrome://tracing)")
	slowest := fs.Int("slowest", 0, "print the N slowest files with a per-phase time breakdown")
	history := fs.String("history", "", "append this run's CWE-tagged findings to the findings-history database at `path`")
	acfg := analyzeOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze needs exactly one directory")
	}

	// The tracer only exists when some output needs it; otherwise the
	// context carries no span and the pipeline takes its nil fast path.
	var tr *trace.Tracer
	if *traceOut != "" || *slowest > 0 {
		tr = trace.New("analyze")
		ctx = trace.ContextWithSpan(ctx, tr.Root())
	}
	fv, d, err := secmetric.AnalyzeDirWithDiagnostics(ctx, fs.Arg(0), *acfg)
	tr.Finish()
	if err != nil {
		return err
	}
	if *history != "" {
		rep, err := secmetric.CollectFindingsDir(fs.Arg(0))
		if err != nil {
			return err
		}
		if err := recordHistory(*history, fs.Arg(0), "analyze", rep); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		if ferr := tr.WriteTraceEvents(f); ferr != nil {
			f.Close()
			return ferr
		}
		if ferr := f.Close(); ferr != nil {
			return ferr
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (load it in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *asJSON {
		out := struct {
			Features    secmetric.FeatureVector        `json:"features"`
			Diagnostics *secmetric.AnalysisDiagnostics `json:"diagnostics,omitempty"`
		}{Features: fv}
		if *diag {
			out.Diagnostics = d
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		names := append([]string(nil), metrics.FeatureNames...)
		sort.Strings(names)
		fmt.Printf("Code properties of %s:\n", fs.Arg(0))
		for _, n := range names {
			fmt.Printf("  %-22s %12.3f\n", n, fv[n])
		}
		if *diag {
			fmt.Print(d)
		}
	}
	if *slowest > 0 {
		fmt.Print(trace.RenderSlowest(tr.SlowestFiles(*slowest)))
	}
	return nil
}

// loadOrTrain loads a model file, or trains the default model when path is
// empty.
func loadOrTrain(path string) (*secmetric.Model, error) {
	if path != "" {
		return secmetric.LoadModel(path)
	}
	fmt.Fprintln(os.Stderr, "no -model given; training the default model on the built-in corpus...")
	c, err := secmetric.DefaultCorpus()
	if err != nil {
		return nil, err
	}
	return secmetric.TrainDefault(c)
}

func cmdScore(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("score", flag.ContinueOnError)
	modelPath := fs.String("model", "", "trained model file (from trainctl)")
	asJSON := fs.Bool("json", false, "emit the report as JSON (for CI integration)")
	acfg := analyzeOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("score needs exactly one directory")
	}
	fv, err := secmetric.AnalyzeDirWith(ctx, fs.Arg(0), *acfg)
	if err != nil {
		return err
	}
	model, err := loadOrTrain(*modelPath)
	if err != nil {
		return err
	}
	rep := model.Score(fs.Arg(0), fv)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Print(rep)
	return nil
}

func cmdCompare(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	modelPath := fs.String("model", "", "trained model file (from trainctl)")
	incremental := fs.Bool("incremental", false, "analyze old fully, then apply the old→new diff as a changeset instead of re-analyzing new from scratch")
	acfg := analyzeOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare needs exactly two directories")
	}
	var oldFV, newFV secmetric.FeatureVector
	var err error
	if *incremental {
		oldFV, newFV, err = compareIncremental(ctx, fs.Arg(0), fs.Arg(1), *acfg)
	} else {
		// With -cache, the two versions share one cache, so only the files
		// that changed between them are deep-analyzed twice.
		oldFV, err = secmetric.AnalyzeDirWith(ctx, fs.Arg(0), *acfg)
		if err == nil {
			newFV, err = secmetric.AnalyzeDirWith(ctx, fs.Arg(1), *acfg)
		}
	}
	if err != nil {
		return err
	}
	model, err := loadOrTrain(*modelPath)
	if err != nil {
		return err
	}
	fmt.Print(model.Compare(fs.Arg(0), oldFV, fs.Arg(1), newFV))
	return nil
}

// compareIncremental seeds a session with the old tree, then applies the
// old→new diff as one changeset, so only the files the change touched are
// re-analyzed. The session's parity contract makes both vectors — and
// therefore the printed comparison — byte-identical to the batch path's.
func compareIncremental(ctx context.Context, oldDir, newDir string, acfg secmetric.AnalyzeConfig) (oldFV, newFV secmetric.FeatureVector, err error) {
	oldTree, err := metrics.LoadTree(oldDir)
	if err != nil {
		return nil, nil, err
	}
	newTree, err := metrics.LoadTree(newDir)
	if err != nil {
		return nil, nil, err
	}
	if len(oldTree.Files) == 0 {
		return nil, nil, fmt.Errorf("no source files under %s", oldDir)
	}
	if len(newTree.Files) == 0 {
		return nil, nil, fmt.Errorf("no source files under %s", newDir)
	}
	sess, err := secmetric.NewSession(oldDir, acfg)
	if err != nil {
		return nil, nil, err
	}
	seed, err := sess.Apply(ctx, secmetric.SessionChangeset{Added: oldTree.Files})
	if err != nil {
		return nil, nil, err
	}
	cs := diffTrees(oldTree, newTree)
	if cs.Empty() {
		return seed.Features, seed.Features, nil
	}
	res, err := sess.Apply(ctx, cs)
	if err != nil {
		return nil, nil, err
	}
	return seed.Features, res.Features, nil
}

// diffTrees computes the changeset that edits old into new: paths only in
// new are additions, paths only in old are removals, and shared paths with
// different content are modifications.
func diffTrees(oldTree, newTree *metrics.Tree) secmetric.SessionChangeset {
	var cs secmetric.SessionChangeset
	prev := make(map[string]metrics.File, len(oldTree.Files))
	for _, f := range oldTree.Files {
		prev[f.Path] = f
	}
	next := make(map[string]bool, len(newTree.Files))
	for _, f := range newTree.Files {
		next[f.Path] = true
		if old, ok := prev[f.Path]; !ok {
			cs.Added = append(cs.Added, f)
		} else if old.Content != f.Content || old.Language != f.Language {
			cs.Modified = append(cs.Modified, f)
		}
	}
	for _, f := range oldTree.Files {
		if !next[f.Path] {
			cs.Removed = append(cs.Removed, f.Path)
		}
	}
	return cs
}
