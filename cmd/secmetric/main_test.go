package main

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	secmetric "repro"
)

var (
	modelOnce sync.Once
	modelPath string
	modelErr  error
)

// sharedModel trains one small model for every CLI test.
func sharedModel(t *testing.T) string {
	t.Helper()
	modelOnce.Do(func() {
		c, err := secmetric.DefaultCorpus()
		if err != nil {
			modelErr = err
			return
		}
		m, err := secmetric.Train(c, secmetric.TrainConfig{
			Kind: secmetric.KindLogistic, Folds: 3, Seed: 1,
		})
		if err != nil {
			modelErr = err
			return
		}
		dir, err := os.MkdirTemp("", "secmetric-cli")
		if err != nil {
			modelErr = err
			return
		}
		modelPath = filepath.Join(dir, "model.json")
		modelErr = secmetric.SaveModel(m, modelPath)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelPath
}

func writeSrc(t *testing.T, name, content string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const cliSrc = `
int main(void) {
	char buf[8];
	gets(buf);
	printf(buf);
	return 0;
}`

func TestCLIAnalyze(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := run(context.Background(), []string{"analyze", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIAnalyzeDiag(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	// A second, unparseable file gives the diagnostics a parse-skip row.
	if err := os.WriteFile(filepath.Join(dir, "bad.c"), []byte("int main( { nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{"analyze", "-diag", "-file-timeout", "1m", "-jobs", "2", dir}
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"analyze", "-file-timeout", "bogus", dir}); err == nil {
		t.Fatal("malformed -file-timeout accepted")
	}
}

func TestCLIScore(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := run(context.Background(), []string{"score", "-model", sharedModel(t), dir}); err != nil {
		t.Fatal(err)
	}
}

func TestCLICompare(t *testing.T) {
	old := writeSrc(t, "main.c", cliSrc)
	clean := writeSrc(t, "main.c", "int main(void) { return 0; }\n")
	if err := run(context.Background(), []string{"compare", "-model", sharedModel(t), old, clean}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFocus(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := run(context.Background(), []string{"focus", "-model", sharedModel(t), "-budget", "7", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIFindings(t *testing.T) {
	// The wrapped source makes every flow cross-function; the findings
	// subcommand must still surface the CWE-121 copy.
	dir := writeSrc(t, "main.c", `
int fetch(void) {
	int p = recv(0);
	return p;
}
int main(void) {
	int buf = 0;
	int req = fetch();
	strcpy(buf, req);
	return 0;
}`)
	for _, args := range [][]string{
		{"findings", dir},
		{"findings", "-min", "high", dir},
		{"findings", "-json", dir},
		{"findings", "-min", "critical", dir}, // filters everything: "no findings" path
	} {
		if err := run(context.Background(), args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	rep, err := secmetric.CollectFindingsDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountCWE(121) == 0 {
		t.Fatalf("wrapped-source strcpy not surfaced as CWE-121:\n%s", rep)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                                 // no subcommand
		{"unknown"},                        // bad subcommand
		{"analyze"},                        // missing dir
		{"analyze", "/no/dir"},             // missing path
		{"score"},                          // missing dir
		{"compare", "just-one"},            // wrong arity
		{"focus"},                          // missing dir
		{"findings"},                       // missing dir
		{"findings", "-min", "bogus", "x"}, // bad severity
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestCLIBadModelFile(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"score", "-model", bad, dir}); err == nil {
		t.Fatal("corrupt model accepted")
	}
}

func TestCLIRank(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := run(context.Background(), []string{"rank", "-top", "3", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"rank", "-json", "-explain", "-vcs-seed", "7", dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"rank", t.TempDir()}); err == nil {
		t.Fatal("empty dir produced a ranking")
	}
	// The deprecated alias forwards to the same engine.
	if err := run(context.Background(), []string{"hotspots", "-top", "3", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIScoreJSON(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := run(context.Background(), []string{"score", "-model", sharedModel(t), "-json", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIImage(t *testing.T) {
	front := writeSrc(t, "main.c", cliSrc)
	back := writeSrc(t, "db.c", "int main(void) { return 0; }\n")
	manifest := filepath.Join(t.TempDir(), "image.json")
	content := `{
  "name": "test-image",
  "components": [
    {"name": "front", "dir": ` + jsonStr(front) + `, "exposure": "internet", "depends_on": ["back"]},
    {"name": "back", "dir": ` + jsonStr(back) + `, "exposure": "internal", "privileged": true}
  ]
}`
	if err := os.WriteFile(manifest, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"image", "-model", sharedModel(t), manifest}); err != nil {
		t.Fatal(err)
	}
	// Bad manifest cases.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","components":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"image", "-model", sharedModel(t), bad}); err == nil {
		t.Fatal("componentless manifest accepted")
	}
}

func jsonStr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestCLIAnalyzeTraceAndSlowest runs a traced analysis and checks both the
// Perfetto export and the slowest-files table.
func TestCLIAnalyzeTraceAndSlowest(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := os.WriteFile(filepath.Join(dir, "two.c"), []byte("int f(int x) { return x + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(t.TempDir(), "out.json")
	out := captureStdout(t, func() error {
		return run(context.Background(), []string{"analyze", "-trace", traceFile, "-slowest", "2", dir})
	})
	if !strings.Contains(out, "file") || !strings.Contains(out, "main.c") {
		t.Fatalf("slowest table missing file rows:\n%s", out)
	}

	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) < 4 {
		t.Fatalf("trace has only %d events", len(tf.TraceEvents))
	}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" {
			t.Fatalf("malformed event %+v", ev)
		}
	}
}

// TestCLIAnalyzeTracingDoesNotChangeOutput is the acceptance criterion:
// the analyze output (vector and diagnostics, JSON-encoded) is
// byte-identical whether or not a trace is being recorded.
func TestCLIAnalyzeTracingDoesNotChangeOutput(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	if err := os.WriteFile(filepath.Join(dir, "bad.c"), []byte("int main( { nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []string{"1", "8"} {
		plain := captureStdout(t, func() error {
			return run(context.Background(), []string{"analyze", "-json", "-diag", "-jobs", jobs, dir})
		})
		traceFile := filepath.Join(t.TempDir(), "out.json")
		traced := captureStdout(t, func() error {
			return run(context.Background(), []string{"analyze", "-json", "-diag", "-jobs", jobs, "-trace", traceFile, dir})
		})
		if plain != traced {
			t.Fatalf("jobs=%s: traced stdout differs from untraced:\n--- plain\n%s\n--- traced\n%s", jobs, plain, traced)
		}
		if strings.Contains(plain, `"trace"`) {
			t.Fatalf("analyze output contains a trace key:\n%s", plain)
		}
	}
}

// TestCLICompareIncrementalMatchesBatch holds `compare -incremental` to
// the parity contract: the printed comparison must be byte-identical to
// the batch path's over the same two directories.
func TestCLICompareIncrementalMatchesBatch(t *testing.T) {
	old := t.TempDir()
	for name, content := range map[string]string{
		"keep.c": "int keep(int x) { return x + 1; }\n",
		"edit.c": cliSrc,
		"gone.c": "int gone(void) { return 9; }\n",
	} {
		if err := os.WriteFile(filepath.Join(old, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	newDir := t.TempDir()
	for name, content := range map[string]string{
		"keep.c":  "int keep(int x) { return x + 1; }\n",
		"edit.c":  "int main(void) { return 0; }\n",
		"fresh.c": "int fresh(int n) { if (n > 2) { return n; } return 0; }\n",
	} {
		if err := os.WriteFile(filepath.Join(newDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	model := sharedModel(t)
	batch := captureStdout(t, func() error {
		return run(context.Background(), []string{"compare", "-model", model, old, newDir})
	})
	incremental := captureStdout(t, func() error {
		return run(context.Background(), []string{"compare", "-model", model, "-incremental", old, newDir})
	})
	if batch != incremental {
		t.Fatalf("incremental compare output differs from batch:\n--- batch ---\n%s\n--- incremental ---\n%s", batch, incremental)
	}
	// Identical trees: the incremental path diffs to an empty changeset
	// and must still print a comparison rather than erroring.
	same := captureStdout(t, func() error {
		return run(context.Background(), []string{"compare", "-model", model, "-incremental", old, old})
	})
	if !strings.Contains(same, old) {
		t.Fatalf("self-compare output missing the directory name:\n%s", same)
	}
}

// TestCLIHistoryAndQuery records two runs with -history and reads them
// back through `secmetric query`, checking the planner's -explain output
// and the planned-vs-full-scan parity at the CLI surface.
func TestCLIHistoryAndQuery(t *testing.T) {
	dir := writeSrc(t, "main.c", cliSrc)
	db := filepath.Join(t.TempDir(), "findings.db")
	if err := run(context.Background(), []string{"findings", "-history", db, dir}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"analyze", "-history", db, dir}); err != nil {
		t.Fatal(err)
	}

	queryJSON := func(args ...string) []secmetric.HistoryRun {
		t.Helper()
		out := captureStdout(t, func() error {
			return run(context.Background(), append([]string{"query", "-db", db, "-json"}, args...))
		})
		var runs []secmetric.HistoryRun
		if err := json.Unmarshal([]byte(out), &runs); err != nil {
			t.Fatalf("query output %q: %v", out, err)
		}
		return runs
	}

	all := queryJSON("")
	if len(all) != 2 {
		t.Fatalf("recorded %d runs, want 2: %+v", len(all), all)
	}
	if all[0].Seq != 1 || all[1].Seq != 2 || all[0].Source != "findings" || all[1].Source != "analyze" {
		t.Fatalf("run shape wrong: %+v", all)
	}

	// cliSrc's gets() call is a CWE-242 finding at high severity; an
	// indexed predicate must match both runs, identically to a full scan.
	planned := queryJSON("severity >= high")
	full := queryJSON("-full-scan", "severity >= high")
	pj, _ := json.Marshal(planned)
	fj, _ := json.Marshal(full)
	if string(pj) != string(fj) {
		t.Fatalf("CLI parity violation:\n planned: %s\n full:    %s", pj, fj)
	}
	if len(planned) != 2 {
		t.Fatalf("severity query matched %d runs, want 2", len(planned))
	}

	// Human-readable table and the no-match path.
	table := captureStdout(t, func() error {
		return run(context.Background(), []string{"query", "-db", db, "-explain", "severity >= high"})
	})
	if !strings.Contains(table, "REPO") || !strings.Contains(strings.ToLower(table), "high") {
		t.Fatalf("table output wrong:\n%s", table)
	}
	none := captureStdout(t, func() error {
		return run(context.Background(), []string{"query", "-db", db, "total = 12345"})
	})
	if !strings.Contains(none, "no runs match") {
		t.Fatalf("empty-result output wrong: %q", none)
	}

	// A malformed query is a CLI error, not a panic.
	if err := run(context.Background(), []string{"query", "-db", db, "bogus > 1"}); err == nil {
		t.Fatal("malformed query accepted")
	}
}
