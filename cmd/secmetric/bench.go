package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// cmdBench runs the fixed-scale performance workloads and writes
// BENCH_<rev>.json; with -against it compares ns/op to a committed
// baseline and fails on regressions beyond -max-regress.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "short measurement budget (CI smoke); workload scales are unchanged")
	rev := fs.String("rev", "dev", "revision label stamped into the report")
	out := fs.String("out", "", "report output path (default BENCH_<rev>.json; \"-\" for stdout)")
	against := fs.String("against", "", "baseline BENCH_*.json to compare against; regressions fail the run")
	maxRegress := fs.Float64("max-regress", 0.25, "allowed ns/op regression vs -against (0.25 = 25%)")
	dir := fs.String("dir", "examples/vulnapp", "example tree the extraction workloads replicate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("bench takes no positional arguments")
	}
	rep, err := bench.Run(bench.Options{
		Quick: *quick,
		Rev:   *rev,
		Dir:   *dir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format, args...)
		},
	})
	if err != nil {
		return err
	}

	path := *out
	if path == "" {
		path = "BENCH_" + *rev + ".json"
	}
	var w *os.File
	if path == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(path)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if path != "-" {
		fmt.Fprintf(os.Stderr, "bench report written to %s\n", path)
	}

	if *against != "" {
		data, err := os.ReadFile(*against)
		if err != nil {
			return fmt.Errorf("bench -against: %w", err)
		}
		var base bench.Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("bench -against %s: %w", *against, err)
		}
		if names := bench.Regressed(rep, &base, *maxRegress); len(names) > 0 {
			// A microsecond-scale workload can spike past the gate from
			// one-off machine interference (page reclaim after a heavy test
			// run, a background task on the only CPU). Before failing,
			// re-measure just the suspects at the full budget; a genuine
			// regression reproduces, a spike does not.
			fmt.Fprintf(os.Stderr, "bench: re-measuring %s at full budget to rule out interference\n",
				strings.Join(names, ", "))
			again, err := bench.Run(bench.Options{
				Rev:  *rev,
				Dir:  *dir,
				Only: names,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format, args...)
				},
			})
			if err != nil {
				return err
			}
			bench.Replace(rep, again)
			if regs := bench.Compare(rep, &base, *maxRegress); len(regs) > 0 {
				return fmt.Errorf("bench: performance regressions vs %s (confirmed on re-measure):\n  %s",
					*against, strings.Join(regs, "\n  "))
			}
		}
		fmt.Fprintf(os.Stderr, "bench: no regressions beyond %.0f%% vs %s\n", *maxRegress*100, *against)
	}
	return nil
}
