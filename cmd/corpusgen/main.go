// Command corpusgen generates the synthetic CVE corpus and writes it as a
// JSON snapshot, plus an optional CSV of the Figure 2/3 scatter series.
//
// Usage:
//
//	corpusgen [-seed N] [-out corpus.json] [-csv scatter.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/corpus"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", corpus.DefaultParams().Seed, "generator seed")
	out := flag.String("out", "corpus.json", "CVE database snapshot output path")
	csvPath := flag.String("csv", "", "optional per-app scatter CSV output path")
	flag.Parse()

	params := corpus.DefaultParams()
	params.Seed = *seed
	c, err := corpus.Generate(params)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.DB.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	kloc, vulns := c.LoCVulnSeries()
	fit := stats.FitLinear(stats.Log10(kloc), stats.Log10(vulns))
	fmt.Printf("wrote %s: %d apps, %d CVEs\n", *out, len(c.Apps), c.TotalCVEs())
	fmt.Printf("Figure 2 fit: %s\n", fit)

	if *csvPath != "" {
		cf, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		w := csv.NewWriter(cf)
		if err := w.Write([]string{"app", "language", "kloc", "cyclomatic", "vulns"}); err != nil {
			return err
		}
		for _, a := range c.Apps {
			rec := []string{
				a.App.Name,
				a.App.Language.String(),
				strconv.FormatFloat(a.App.KLoC, 'f', 3, 64),
				strconv.FormatFloat(a.App.Cyclomatic, 'f', 1, 64),
				strconv.Itoa(a.VulnCount),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}
