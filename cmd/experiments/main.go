// Command experiments regenerates every evaluation artifact of the paper:
// Figures 1-4, the in-text tables, and the design ablations.
//
// Usage:
//
//	experiments [-run all|f1|f2|f3|f4|t1|t2|fr|a1|a2|a3|a4|reg]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	which := flag.String("run", "all", "experiment id (f1..f4, t1, t2, fr, a1..a4, reg) or 'all'")
	flag.Parse()
	if err := run(strings.ToLower(*which)); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which string) error {
	runners := []struct {
		id string
		fn func() (string, error)
	}{
		{"f1", func() (string, error) {
			r := experiments.Figure1()
			return r.Table, nil
		}},
		{"f2", func() (string, error) {
			r, err := experiments.Figure2()
			return r.Table, err
		}},
		{"f3", func() (string, error) {
			r, err := experiments.Figure3()
			return r.Table, err
		}},
		{"f4", func() (string, error) {
			// Two fold counts, per the DESIGN.md ablation note.
			r10, err := experiments.Figure4(core.KindForest, 10, 42)
			if err != nil {
				return "", err
			}
			r5, err := experiments.Figure4(core.KindForest, 5, 42)
			if err != nil {
				return "", err
			}
			return r10.Table + "\n(5-fold variant)\n" + r5.Table, nil
		}},
		{"t1", func() (string, error) {
			r, err := experiments.Table1()
			return r.Table, err
		}},
		{"t2", func() (string, error) {
			r, err := experiments.Table2(200, 7)
			return r.Table, err
		}},
		{"fr", func() (string, error) {
			r, err := experiments.FuncRank(40, 11)
			return r.Table, err
		}},
		{"a1", func() (string, error) {
			r, err := experiments.AblationLoCOnly(3)
			return r.Table, err
		}},
		{"a2", func() (string, error) {
			r, err := experiments.AblationClassifiers(5)
			return r.Table, err
		}},
		{"a3", func() (string, error) {
			r, err := experiments.AblationFeatureSelection(11)
			return r.Table, err
		}},
		{"a4", func() (string, error) {
			r, err := experiments.AblationSymexecBound(13)
			return r.Table, err
		}},
		{"reg", func() (string, error) {
			r, err := experiments.Regression(17)
			return r.Table, err
		}},
	}
	matched := false
	for _, r := range runners {
		if which != "all" && which != r.id {
			continue
		}
		matched = true
		table, err := r.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		fmt.Printf("\n===== %s =====\n%s\n", strings.ToUpper(r.id), table)
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
