// Command cvestat summarizes a CVE database snapshot (as written by
// corpusgen): severity and yearly histograms, top weakness types, and
// per-application leaders — the exploratory views behind Figures 2-3.
//
// Usage:
//
//	cvestat [-db corpus.json] [-app name] [-class memory-safety] [-top 10]
//
// Without -db, the built-in corpus is generated on the fly.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/corpus"
	"repro/internal/cvedb"
	"repro/internal/cvss"
	"repro/internal/cwe"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cvestat:", err)
		os.Exit(1)
	}
}

func run() error {
	dbPath := flag.String("db", "", "CVE database snapshot (from corpusgen); empty = generate")
	app := flag.String("app", "", "restrict to one application")
	class := flag.String("class", "", "restrict to a weakness class (memory-safety, injection, ...)")
	top := flag.Int("top", 10, "number of top CWEs / applications to list")
	flag.Parse()

	var db *cvedb.DB
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			return err
		}
		defer f.Close()
		loaded, err := cvedb.Load(f)
		if err != nil {
			return err
		}
		db = loaded
	} else {
		fmt.Fprintln(os.Stderr, "no -db given; generating the built-in corpus...")
		c, err := corpus.Generate(corpus.DefaultParams())
		if err != nil {
			return err
		}
		db = c.DB
	}

	q := cvedb.Query{App: *app}
	if *class != "" {
		q.Class = parseClass(*class)
		if q.Class == cwe.ClassOther {
			return fmt.Errorf("unknown class %q", *class)
		}
	}

	fmt.Printf("records matching: %d (of %d total, %d applications)\n\n",
		db.Count(q), db.NumRecords(), db.NumApps())

	fmt.Println("severity histogram:")
	hist := db.SeverityHistogram(q)
	for _, s := range []cvss.Severity{cvss.SeverityNone, cvss.SeverityLow,
		cvss.SeverityMedium, cvss.SeverityHigh, cvss.SeverityCritical} {
		fmt.Printf("  %-9s %6d %s\n", s, hist[s], bar(hist[s], db.Count(q)))
	}

	fmt.Println("\nby publication year:")
	for _, yc := range db.YearHistogram(q) {
		fmt.Printf("  %d %6d %s\n", yc.Year, yc.Count, bar(yc.Count, db.Count(q)))
	}

	fmt.Printf("\ntop %d weakness types:\n", *top)
	for _, cc := range db.TopCWEs(q, *top) {
		name := fmt.Sprintf("CWE-%d", cc.CWE)
		if e, ok := cwe.Lookup(cc.CWE); ok {
			name = e.String()
		}
		fmt.Printf("  %6d  %s\n", cc.Count, name)
	}

	if *app == "" {
		fmt.Printf("\ntop %d applications by record count:\n", *top)
		type appCount struct {
			name string
			n    int
		}
		var acs []appCount
		for _, a := range db.Apps() {
			qa := q
			qa.App = a.Name
			acs = append(acs, appCount{a.Name, db.Count(qa)})
		}
		sort.Slice(acs, func(i, j int) bool { return acs[i].n > acs[j].n })
		if len(acs) > *top {
			acs = acs[:*top]
		}
		for _, ac := range acs {
			fmt.Printf("  %6d  %s\n", ac.n, ac.name)
		}
	}
	return nil
}

func parseClass(s string) cwe.Class {
	for _, c := range []cwe.Class{cwe.ClassMemory, cwe.ClassInjection,
		cwe.ClassCrypto, cwe.ClassAuth, cwe.ClassInfoLeak,
		cwe.ClassResource, cwe.ClassInput} {
		if c.String() == s {
			return c
		}
	}
	return cwe.ClassOther
}

// bar renders a proportional ASCII bar.
func bar(n, total int) string {
	if total == 0 {
		return ""
	}
	w := n * 40 / total
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
