// Command tracecheck validates a Chrome trace_event file produced by
// `secmetric analyze -trace`: the file must be well-formed JSON in the
// trace_event object format with a non-empty traceEvents array, and every
// event must carry a name, the "X" (complete) phase, and non-negative
// timestamps. verify.sh runs it as the trace smoke's assertion.
//
// Usage:
//
//	tracecheck <trace.json>            validate one trace
//	tracecheck <a.json> <b.json>       additionally assert the two traces
//	                                   are structurally identical: the same
//	                                   ordered sequence of (name, args)
//	                                   events, durations aside — the
//	                                   determinism contract for the same
//	                                   workload at different -jobs widths
//
// Exit status 0 means the trace would load in Perfetto / chrome://tracing.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) < 2 || len(os.Args) > 3 {
		log.Fatal("usage: tracecheck <trace.json> [other.json]")
	}
	shapes := make([]string, 0, 2)
	for _, path := range os.Args[1:] {
		shape, err := check(path)
		if err != nil {
			log.Fatal(err)
		}
		shapes = append(shapes, shape)
	}
	if len(shapes) == 2 && shapes[0] != shapes[1] {
		log.Fatalf("%s and %s are structurally different:\n--- %s\n%s\n--- %s\n%s",
			os.Args[1], os.Args[2], os.Args[1], shapes[0], os.Args[2], shapes[1])
	}
	if len(shapes) == 2 {
		fmt.Println("tracecheck: traces structurally identical")
	}
}

type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	TS   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	PID  int             `json:"pid"`
	TID  int             `json:"tid"`
	Args json.RawMessage `json:"args"`
}

// check validates one trace file and returns its durationless shape: the
// ordered (name, args) sequence. Events are exported in a deterministic
// tree walk, so the shape is comparable across runs; tids are excluded
// (lane assignment depends on timing overlap).
func check(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var tf struct {
		TraceEvents     []event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		return "", fmt.Errorf("%s: not valid trace_event JSON: %w", path, err)
	}
	if len(tf.TraceEvents) == 0 {
		return "", fmt.Errorf("%s: traceEvents is empty", path)
	}
	names := map[string]bool{}
	shape := ""
	for i, ev := range tf.TraceEvents {
		switch {
		case ev.Name == "":
			return "", fmt.Errorf("%s: event %d has no name", path, i)
		case ev.Ph != "X":
			return "", fmt.Errorf("%s: event %d (%s): phase %q, want \"X\"", path, i, ev.Name, ev.Ph)
		case ev.TS == nil || *ev.TS < 0:
			return "", fmt.Errorf("%s: event %d (%s): missing or negative ts", path, i, ev.Name)
		case ev.Dur == nil || *ev.Dur < 0:
			return "", fmt.Errorf("%s: event %d (%s): missing or negative dur", path, i, ev.Name)
		case ev.TID < 1:
			return "", fmt.Errorf("%s: event %d (%s): tid %d, want >= 1", path, i, ev.Name, ev.TID)
		}
		names[ev.Name] = true
		shape += ev.Name + " " + string(ev.Args) + "\n"
	}
	fmt.Printf("tracecheck: %s ok — %d events, %d distinct phases\n",
		path, len(tf.TraceEvents), len(names))
	return shape, nil
}
