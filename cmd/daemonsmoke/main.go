// Command daemonsmoke is the end-to-end acceptance harness verify.sh runs
// against a live secmetricd. It drives the daemon exactly like external
// tooling would — over HTTP through pkg/client — and asserts the serving
// contract:
//
//	-mode full (default):
//	  * /healthz answers ok
//	  * N concurrent /v1/score requests all succeed and return reports
//	    byte-identical to each other and to a `secmetric score -json` CLI
//	    run over the same directory and model (-cli file)
//	  * /v1/findings returns a non-empty findings stream
//	  * /v1/analyze succeeds
//	  * /metrics exposes the request counters, cache traffic, and
//	    per-phase busy totals grown by the load above
//	  * /v1/models/reload succeeds and re-lists the models
//	  * a request with a 1 ms budget over a large synthetic tree fails
//	    with the daemon's deadline signal (504) — and the process stays
//	    alive (healthz still answers)
//
//	-mode delta:
//	  * a /v1/delta modification before any seed fails with the 409
//	    stale-session signal
//	  * seeding a session with the full tree succeeds (seq 1, no
//	    comparison) and scores byte-identically to a cold /v1/score of
//	    the same tree under the same subject name
//	  * a 1-file change applies incrementally (seq 2, diagnostics cover
//	    only that file) and both its report and its comparison are
//	    byte-identical to cold /v1/score and /v1/compare over the full
//	    trees — the incremental path changes the cost, never the bytes
//	  * a changeset contradicting the session state answers 409 and
//	    leaves the session usable
//
//	-mode rank:
//	  * /v1/rank returns a non-empty function-level ranking that is
//	    byte-identical across repeated requests and — with -cli pointing at
//	    a `secmetric rank -json` run over the same directory — byte-identical
//	    to the CLI's ranking
//
//	-mode burst:
//	  * a burst of concurrent /v1/score requests against a tightly
//	    provisioned daemon (workers=1, queue=1) yields at least one 429
//	    rejection and at least one success, and every success is
//	    byte-identical — backpressure sheds load instead of queueing
//	    without bound, and shed load never corrupts served results. Each
//	    request carries a distinct tree name so the burst is distinct
//	    work: an identical burst would coalesce into one queued job and
//	    (correctly) never shed.
//
//	-mode stream:
//	  * /v1/analyze/stream and /v1/findings/stream (driven through the
//	    typed client) fire one per-file callback per tree file and end
//	    with a summary byte-identical to the batch endpoint's response;
//	    the per-file findings records concatenated in path order carry
//	    exactly the batch report's findings
//
//	-mode fleet (boots its own processes; needs -daemon and -model):
//	  * a 3-backend fleet behind the consistent-hash router answers
//	    /v1/score, /v1/rank, /v1/delta, and /v1/query byte-identical to a
//	    single solo daemon (query times normalized — shards stamp their
//	    own clocks)
//	  * an unseeded /v1/delta modification crosses the router as the
//	    same 409 stale-session signal a direct daemon answers
//	  * a burst of identical scores through the router coalesces on the
//	    home backend (its coalesced_total counter moves) and every
//	    response is byte-identical to the solo daemon's
//	  * SIGKILLing one backend mid-burst leaves the fleet serving: after
//	    the kill every repo still scores correctly (keys slide to the
//	    ring successor), and restarting the backend on its old address
//	    re-admits it (router health returns to all-healthy)
//
// Exit status 0 means every assertion held.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daemonsmoke: ")
	var (
		addr      = flag.String("addr", "", "daemon address (host:port); unused by -mode fleet")
		dir       = flag.String("dir", "examples/vulnapp", "source directory to score")
		cliFile   = flag.String("cli", "", "file holding `secmetric score -json` output to compare against")
		mode      = flag.String("mode", "full", "full | burst | delta | rank | stream | fleet")
		requests  = flag.Int("requests", 8, "concurrent requests per phase")
		replicas  = flag.Int("replicas", 300, "file replicas in the large synthetic tree (deadline/burst phases)")
		daemonBin = flag.String("daemon", "", "fleet mode: path to the secmetricd binary to boot")
		modelFile = flag.String("model", "", "fleet mode: model file every booted daemon serves")
	)
	flag.Parse()
	ctx := context.Background()
	if *mode == "fleet" {
		if *daemonBin == "" || *modelFile == "" {
			log.Fatal("-mode fleet needs -daemon and -model")
		}
		if err := runFleet(ctx, *daemonBin, *modelFile, *dir, *requests); err != nil {
			log.Fatal(err)
		}
		fmt.Println("daemonsmoke: OK (fleet)")
		return
	}
	if *addr == "" {
		log.Fatal("-addr is required")
	}
	c := client.New("http://" + *addr)
	var err error
	switch *mode {
	case "full":
		err = runFull(ctx, c, *dir, *cliFile, *requests, *replicas)
	case "burst":
		err = runBurst(ctx, c, *dir, *requests, *replicas)
	case "delta":
		err = runDelta(ctx, c, *dir)
	case "rank":
		err = runRank(ctx, c, *dir, *cliFile)
	case "stream":
		err = runStream(ctx, c, *dir)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemonsmoke: OK (" + *mode + ")")
}

// canon re-marshals any JSON-representable value with sorted keys and
// fixed indentation, so two values are byte-identical iff they are equal.
func canon(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var x any
	if err := json.Unmarshal(raw, &x); err != nil {
		return nil, err
	}
	return json.MarshalIndent(x, "", " ")
}

// bigTree replicates dir's files with distinct paths AND distinct contents
// (a unique trailing comment), so the content-addressed cache cannot
// shortcut the work — the analysis cost scales with replicas.
func bigTree(dir string, replicas int) (api.Tree, error) {
	base, err := client.TreeFromDir(dir)
	if err != nil {
		return api.Tree{}, err
	}
	out := api.Tree{Name: "bigtree"}
	for i := 0; i < replicas; i++ {
		for _, f := range base.Files {
			out.Files = append(out.Files, api.File{
				Path:    fmt.Sprintf("r%04d/%s", i, f.Path),
				Content: f.Content + fmt.Sprintf("\n// replica %d\n", i),
			})
		}
	}
	return out, nil
}

func runFull(ctx context.Context, c *client.Client, dir, cliFile string, requests, replicas int) error {
	// 1. Liveness.
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" || len(h.Models) == 0 {
		return fmt.Errorf("healthz: status %q, models %v", h.Status, h.Models)
	}
	log.Printf("healthz ok: models=%v default=%q", h.Models, h.DefaultModel)

	// 2. Concurrent scores, byte-identical to each other and to the CLI.
	tree, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}
	reports := make([][]byte, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Score(ctx, api.ScoreRequest{Tree: tree})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = canon(resp.Report)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("concurrent score %d: %w", i, err)
		}
	}
	for i := 1; i < requests; i++ {
		if string(reports[i]) != string(reports[0]) {
			return fmt.Errorf("concurrent score %d returned different report bytes than score 0", i)
		}
	}
	log.Printf("%d concurrent scores byte-identical", requests)
	if cliFile != "" {
		cliRaw, err := os.ReadFile(cliFile)
		if err != nil {
			return err
		}
		var cliRep any
		if err := json.Unmarshal(cliRaw, &cliRep); err != nil {
			return fmt.Errorf("parse %s: %w", cliFile, err)
		}
		want, err := canon(cliRep)
		if err != nil {
			return err
		}
		if string(reports[0]) != string(want) {
			return fmt.Errorf("daemon report differs from CLI report (%s)", cliFile)
		}
		log.Printf("daemon report byte-identical to CLI run")
	}

	// 3. Findings: 200 + non-empty.
	fr, err := c.Findings(ctx, api.FindingsRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("findings: %w", err)
	}
	if fr.Report == nil || fr.Report.Total() == 0 {
		return fmt.Errorf("findings: empty report for %s", dir)
	}
	log.Printf("findings: %d finding(s)", fr.Report.Total())

	// 4. Analyze.
	ar, err := c.Analyze(ctx, api.AnalyzeRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if len(ar.Features) == 0 {
		return fmt.Errorf("analyze: empty feature vector")
	}

	// 5. Metrics exposition.
	m, err := c.RawMetrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"secmetricd_requests_total",
		"secmetricd_request_duration_seconds_bucket",
		"secmetricd_in_flight_requests",
		"secmetricd_featcache_hits_total",
		"secmetricd_models_loaded",
		`secmetricd_phase_seconds_total{phase=`,
		`secmetricd_phase_spans_total{phase="request"}`,
	} {
		if !strings.Contains(m, want) {
			return fmt.Errorf("metrics: missing series %s", want)
		}
	}
	// The traffic above must have grown the per-phase counters: every
	// admitted request records at least its root "request" span.
	if !phaseSpansPositive(m) {
		return fmt.Errorf("metrics: phase_spans_total{phase=\"request\"} not positive after load:\n%s", m)
	}
	log.Printf("metrics exposition ok (%d bytes), phase counters grew", len(m))

	// 6. Hot reload.
	rl, err := c.Reload(ctx)
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	if len(rl.Models) == 0 {
		return fmt.Errorf("reload: no models after reload")
	}
	log.Printf("reload ok: models=%v", rl.Models)

	// 7. Deadline: a 1 ms budget over a large tree must trip the
	// daemon's timeout path, not kill the process.
	big, err := bigTree(dir, replicas)
	if err != nil {
		return err
	}
	_, err = c.Score(ctx, api.ScoreRequest{Tree: big, TimeoutMS: 1})
	if err == nil {
		return fmt.Errorf("deadline: 1ms score of %d files unexpectedly succeeded", len(big.Files))
	}
	if !client.IsDeadline(err) {
		return fmt.Errorf("deadline: want the daemon's 504 signal, got: %w", err)
	}
	if _, err := c.Health(ctx); err != nil {
		return fmt.Errorf("daemon unhealthy after deadline trip: %w", err)
	}
	log.Printf("deadline trip returned 504 and the daemon stayed up")
	return nil
}

// phaseSpansPositive parses the request-phase span counter out of the
// exposition and reports whether it is positive.
func phaseSpansPositive(m string) bool {
	const prefix = `secmetricd_phase_spans_total{phase="request"} `
	for _, line := range strings.Split(m, "\n") {
		if v, ok := strings.CutPrefix(line, prefix); ok {
			n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return err == nil && n > 0
		}
	}
	return false
}

// runDelta drives the incremental endpoint end to end and holds it to the
// byte-parity contract: every report or comparison it produces must be
// byte-identical to the cold endpoints' answer for the same tree under the
// same subject name.
func runDelta(ctx context.Context, c *client.Client, dir string) error {
	tree, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}
	if len(tree.Files) == 0 {
		return fmt.Errorf("delta: no source files under %s", dir)
	}
	const repo = "smoke-repo"

	// 1. Unseeded modification: the daemon has no picture of this repo.
	_, err = c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{
		Modified: []api.File{tree.Files[0]},
	}})
	if err == nil {
		return fmt.Errorf("delta: unseeded modify unexpectedly succeeded")
	}
	if !client.IsStaleSession(err) {
		return fmt.Errorf("delta: want the 409 stale-session signal, got: %w", err)
	}
	log.Printf("unseeded modify rejected with 409 stale_session")

	// 2. Seed with the full tree.
	seed, err := c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{Added: tree.Files}})
	if err != nil {
		return fmt.Errorf("delta seed: %w", err)
	}
	if seed.Seq != 1 || seed.Files != len(tree.Files) || seed.Report == nil || seed.Comparison != nil {
		return fmt.Errorf("delta seed: seq=%d files=%d report? %v comparison? %v",
			seed.Seq, seed.Files, seed.Report != nil, seed.Comparison != nil)
	}
	// Cold truth for the seed: score the same tree under the delta
	// endpoint's subject name; identical feature vectors must yield
	// byte-identical reports.
	oldTree := api.Tree{Name: fmt.Sprintf("%s@1", repo), Files: tree.Files}
	coldSeed, err := c.Score(ctx, api.ScoreRequest{Tree: oldTree})
	if err != nil {
		return fmt.Errorf("cold score (seed): %w", err)
	}
	if err := assertSameJSON("seed report vs cold score", seed.Report, coldSeed.Report); err != nil {
		return err
	}
	log.Printf("seed applied (%d files, %d ms); report byte-identical to cold score", seed.Files, seed.ElapsedMS)

	// 3. One-file change, applied incrementally.
	edited := tree.Files[0]
	edited.Content += "\nint smoke_delta_edit(int x) { if (x > 3) { return x; } return 0; }\n"
	change, err := c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{
		Modified: []api.File{edited},
	}})
	if err != nil {
		return fmt.Errorf("delta change: %w", err)
	}
	if change.Seq != 2 || change.Files != len(tree.Files) || change.Comparison == nil {
		return fmt.Errorf("delta change: seq=%d files=%d comparison? %v",
			change.Seq, change.Files, change.Comparison != nil)
	}
	if change.Diagnostics == nil || len(change.Diagnostics.Files) != 1 {
		return fmt.Errorf("delta change: diagnostics should cover exactly the edited file, got %+v", change.Diagnostics)
	}

	// 4. Byte parity against the cold endpoints over the full trees.
	newFiles := append([]api.File(nil), tree.Files...)
	newFiles[0] = edited
	newTree := api.Tree{Name: fmt.Sprintf("%s@2", repo), Files: newFiles}
	coldScore, err := c.Score(ctx, api.ScoreRequest{Tree: newTree})
	if err != nil {
		return fmt.Errorf("cold score (change): %w", err)
	}
	if err := assertSameJSON("change report vs cold score", change.Report, coldScore.Report); err != nil {
		return err
	}
	coldCmp, err := c.Compare(ctx, api.CompareRequest{Old: oldTree, New: newTree})
	if err != nil {
		return fmt.Errorf("cold compare: %w", err)
	}
	if err := assertSameJSON("change comparison vs cold compare", change.Comparison, coldCmp.Comparison); err != nil {
		return err
	}
	log.Printf("1-file change applied in %d ms; report and comparison byte-identical to cold score/compare", change.ElapsedMS)

	// 5. A contradictory changeset is rejected and the session survives.
	_, err = c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{Added: []api.File{edited}}})
	if !client.IsStaleSession(err) {
		return fmt.Errorf("delta: re-adding an existing file should answer 409 stale_session, got: %v", err)
	}
	again, err := c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{
		Modified: []api.File{tree.Files[0]},
	}})
	if err != nil {
		return fmt.Errorf("delta after rejection: %w", err)
	}
	if again.Seq != 3 {
		return fmt.Errorf("delta after rejection: seq=%d, want 3", again.Seq)
	}
	log.Printf("stale changeset rejected; session continued at seq %d", again.Seq)
	return nil
}

// assertSameJSON canon-compares two JSON-representable values.
func assertSameJSON(what string, a, b any) error {
	ca, err := canon(a)
	if err != nil {
		return err
	}
	cb, err := canon(b)
	if err != nil {
		return err
	}
	if string(ca) != string(cb) {
		return fmt.Errorf("%s: bytes differ:\n--- incremental ---\n%s\n--- cold ---\n%s", what, ca, cb)
	}
	return nil
}

// runRank drives /v1/rank and holds it to the determinism contract: repeated
// requests are byte-identical, and — when -cli names a `secmetric rank -json`
// capture of the same directory — the daemon's ranking matches the CLI's
// byte for byte after canonical re-marshalling.
func runRank(ctx context.Context, c *client.Client, dir, cliFile string) error {
	tree, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}
	// The ranking echoes the tree's subject name; the CLI loader names the
	// tree after the directory's base name, so match it for byte parity.
	tree.Name = filepath.Base(dir)
	first, err := c.Rank(ctx, api.RankRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("rank: %w", err)
	}
	if first.Ranking == nil || first.Ranking.Functions == 0 || len(first.Ranking.Ranked) == 0 {
		return fmt.Errorf("rank: empty ranking for %s", dir)
	}
	want, err := canon(first.Ranking)
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		again, err := c.Rank(ctx, api.RankRequest{Tree: tree})
		if err != nil {
			return fmt.Errorf("rank (repeat %d): %w", i, err)
		}
		got, err := canon(again.Ranking)
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			return fmt.Errorf("rank: repeat %d returned different ranking bytes", i)
		}
	}
	log.Printf("rank: %d function(s) in %d bin(s), byte-identical across repeats",
		first.Ranking.Functions, first.Ranking.Bins)
	if cliFile != "" {
		cliRaw, err := os.ReadFile(cliFile)
		if err != nil {
			return err
		}
		var cliRanking any
		if err := json.Unmarshal(cliRaw, &cliRanking); err != nil {
			return fmt.Errorf("parse %s: %w", cliFile, err)
		}
		cliBytes, err := canon(cliRanking)
		if err != nil {
			return err
		}
		if string(want) != string(cliBytes) {
			return fmt.Errorf("rank: daemon ranking differs from CLI ranking (%s)", cliFile)
		}
		log.Printf("rank: daemon ranking byte-identical to CLI run")
	}
	return nil
}

func runBurst(ctx context.Context, c *client.Client, dir string, requests, replicas int) error {
	big, err := bigTree(dir, replicas)
	if err != nil {
		return err
	}
	type result struct {
		report []byte
		err    error
	}
	results := make([]result, requests)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Distinct tree names per request: the tree name is part of
			// the request-coalescing key, so an identical burst would
			// deduplicate into one queued job and never trip 429. The
			// backpressure contract is about distinct work.
			t := big
			t.Name = fmt.Sprintf("%s-burst-%02d", big.Name, i)
			resp, err := c.Score(ctx, api.ScoreRequest{Tree: t})
			if err != nil {
				results[i] = result{err: err}
				return
			}
			// The per-request name is the only field that may differ
			// between successes; normalize it before the parity check.
			resp.Report.Name = big.Name
			b, err := canon(resp.Report)
			results[i] = result{report: b, err: err}
		}(i)
	}
	close(start) // release the whole burst at once
	wg.Wait()

	var ok, rejected int
	var first []byte
	for i, r := range results {
		switch {
		case r.err == nil:
			ok++
			if first == nil {
				first = r.report
			} else if string(r.report) != string(first) {
				return fmt.Errorf("burst: successful response %d differs from the first", i)
			}
		case client.IsQueueFull(r.err):
			rejected++
		default:
			return fmt.Errorf("burst request %d: unexpected error: %w", i, r.err)
		}
	}
	log.Printf("burst of %d: %d served, %d rejected with 429", requests, ok, rejected)
	if ok == 0 {
		return fmt.Errorf("burst: no request succeeded")
	}
	if rejected == 0 {
		return fmt.Errorf("burst: no request was rejected with 429 (queue not enforcing backpressure?)")
	}
	return nil
}
