// Command daemonsmoke is the end-to-end acceptance harness verify.sh runs
// against a live secmetricd. It drives the daemon exactly like external
// tooling would — over HTTP through pkg/client — and asserts the serving
// contract:
//
//	-mode full (default):
//	  * /healthz answers ok
//	  * N concurrent /v1/score requests all succeed and return reports
//	    byte-identical to each other and to a `secmetric score -json` CLI
//	    run over the same directory and model (-cli file)
//	  * /v1/findings returns a non-empty findings stream
//	  * /v1/analyze succeeds
//	  * /metrics exposes the request counters, cache traffic, and
//	    per-phase busy totals grown by the load above
//	  * /v1/models/reload succeeds and re-lists the models
//	  * a request with a 1 ms budget over a large synthetic tree fails
//	    with the daemon's deadline signal (504) — and the process stays
//	    alive (healthz still answers)
//
//	-mode burst:
//	  * a burst of concurrent /v1/score requests against a tightly
//	    provisioned daemon (workers=1, queue=1) yields at least one 429
//	    rejection and at least one success, and every success is
//	    byte-identical — backpressure sheds load instead of queueing
//	    without bound, and shed load never corrupts served results
//
// Exit status 0 means every assertion held.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/pkg/api"
	"repro/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daemonsmoke: ")
	var (
		addr     = flag.String("addr", "", "daemon address (host:port)")
		dir      = flag.String("dir", "examples/vulnapp", "source directory to score")
		cliFile  = flag.String("cli", "", "file holding `secmetric score -json` output to compare against")
		mode     = flag.String("mode", "full", "full | burst")
		requests = flag.Int("requests", 8, "concurrent requests per phase")
		replicas = flag.Int("replicas", 300, "file replicas in the large synthetic tree (deadline/burst phases)")
	)
	flag.Parse()
	if *addr == "" {
		log.Fatal("-addr is required")
	}
	c := client.New("http://" + *addr)
	ctx := context.Background()
	var err error
	switch *mode {
	case "full":
		err = runFull(ctx, c, *dir, *cliFile, *requests, *replicas)
	case "burst":
		err = runBurst(ctx, c, *dir, *requests, *replicas)
	default:
		err = fmt.Errorf("unknown -mode %q", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemonsmoke: OK (" + *mode + ")")
}

// canon re-marshals any JSON-representable value with sorted keys and
// fixed indentation, so two values are byte-identical iff they are equal.
func canon(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var x any
	if err := json.Unmarshal(raw, &x); err != nil {
		return nil, err
	}
	return json.MarshalIndent(x, "", " ")
}

// bigTree replicates dir's files with distinct paths AND distinct contents
// (a unique trailing comment), so the content-addressed cache cannot
// shortcut the work — the analysis cost scales with replicas.
func bigTree(dir string, replicas int) (api.Tree, error) {
	base, err := client.TreeFromDir(dir)
	if err != nil {
		return api.Tree{}, err
	}
	out := api.Tree{Name: "bigtree"}
	for i := 0; i < replicas; i++ {
		for _, f := range base.Files {
			out.Files = append(out.Files, api.File{
				Path:    fmt.Sprintf("r%04d/%s", i, f.Path),
				Content: f.Content + fmt.Sprintf("\n// replica %d\n", i),
			})
		}
	}
	return out, nil
}

func runFull(ctx context.Context, c *client.Client, dir, cliFile string, requests, replicas int) error {
	// 1. Liveness.
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" || len(h.Models) == 0 {
		return fmt.Errorf("healthz: status %q, models %v", h.Status, h.Models)
	}
	log.Printf("healthz ok: models=%v default=%q", h.Models, h.DefaultModel)

	// 2. Concurrent scores, byte-identical to each other and to the CLI.
	tree, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}
	reports := make([][]byte, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Score(ctx, api.ScoreRequest{Tree: tree})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = canon(resp.Report)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("concurrent score %d: %w", i, err)
		}
	}
	for i := 1; i < requests; i++ {
		if string(reports[i]) != string(reports[0]) {
			return fmt.Errorf("concurrent score %d returned different report bytes than score 0", i)
		}
	}
	log.Printf("%d concurrent scores byte-identical", requests)
	if cliFile != "" {
		cliRaw, err := os.ReadFile(cliFile)
		if err != nil {
			return err
		}
		var cliRep any
		if err := json.Unmarshal(cliRaw, &cliRep); err != nil {
			return fmt.Errorf("parse %s: %w", cliFile, err)
		}
		want, err := canon(cliRep)
		if err != nil {
			return err
		}
		if string(reports[0]) != string(want) {
			return fmt.Errorf("daemon report differs from CLI report (%s)", cliFile)
		}
		log.Printf("daemon report byte-identical to CLI run")
	}

	// 3. Findings: 200 + non-empty.
	fr, err := c.Findings(ctx, api.FindingsRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("findings: %w", err)
	}
	if fr.Report == nil || fr.Report.Total() == 0 {
		return fmt.Errorf("findings: empty report for %s", dir)
	}
	log.Printf("findings: %d finding(s)", fr.Report.Total())

	// 4. Analyze.
	ar, err := c.Analyze(ctx, api.AnalyzeRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	if len(ar.Features) == 0 {
		return fmt.Errorf("analyze: empty feature vector")
	}

	// 5. Metrics exposition.
	m, err := c.RawMetrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"secmetricd_requests_total",
		"secmetricd_request_duration_seconds_bucket",
		"secmetricd_in_flight_requests",
		"secmetricd_featcache_hits_total",
		"secmetricd_models_loaded",
		`secmetricd_phase_seconds_total{phase=`,
		`secmetricd_phase_spans_total{phase="request"}`,
	} {
		if !strings.Contains(m, want) {
			return fmt.Errorf("metrics: missing series %s", want)
		}
	}
	// The traffic above must have grown the per-phase counters: every
	// admitted request records at least its root "request" span.
	if !phaseSpansPositive(m) {
		return fmt.Errorf("metrics: phase_spans_total{phase=\"request\"} not positive after load:\n%s", m)
	}
	log.Printf("metrics exposition ok (%d bytes), phase counters grew", len(m))

	// 6. Hot reload.
	rl, err := c.Reload(ctx)
	if err != nil {
		return fmt.Errorf("reload: %w", err)
	}
	if len(rl.Models) == 0 {
		return fmt.Errorf("reload: no models after reload")
	}
	log.Printf("reload ok: models=%v", rl.Models)

	// 7. Deadline: a 1 ms budget over a large tree must trip the
	// daemon's timeout path, not kill the process.
	big, err := bigTree(dir, replicas)
	if err != nil {
		return err
	}
	_, err = c.Score(ctx, api.ScoreRequest{Tree: big, TimeoutMS: 1})
	if err == nil {
		return fmt.Errorf("deadline: 1ms score of %d files unexpectedly succeeded", len(big.Files))
	}
	if !client.IsDeadline(err) {
		return fmt.Errorf("deadline: want the daemon's 504 signal, got: %w", err)
	}
	if _, err := c.Health(ctx); err != nil {
		return fmt.Errorf("daemon unhealthy after deadline trip: %w", err)
	}
	log.Printf("deadline trip returned 504 and the daemon stayed up")
	return nil
}

// phaseSpansPositive parses the request-phase span counter out of the
// exposition and reports whether it is positive.
func phaseSpansPositive(m string) bool {
	const prefix = `secmetricd_phase_spans_total{phase="request"} `
	for _, line := range strings.Split(m, "\n") {
		if v, ok := strings.CutPrefix(line, prefix); ok {
			n, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return err == nil && n > 0
		}
	}
	return false
}

func runBurst(ctx context.Context, c *client.Client, dir string, requests, replicas int) error {
	big, err := bigTree(dir, replicas)
	if err != nil {
		return err
	}
	type result struct {
		report []byte
		err    error
	}
	results := make([]result, requests)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := c.Score(ctx, api.ScoreRequest{Tree: big})
			if err != nil {
				results[i] = result{err: err}
				return
			}
			b, err := canon(resp.Report)
			results[i] = result{report: b, err: err}
		}(i)
	}
	close(start) // release the whole burst at once
	wg.Wait()

	var ok, rejected int
	var first []byte
	for i, r := range results {
		switch {
		case r.err == nil:
			ok++
			if first == nil {
				first = r.report
			} else if string(r.report) != string(first) {
				return fmt.Errorf("burst: successful response %d differs from the first", i)
			}
		case client.IsQueueFull(r.err):
			rejected++
		default:
			return fmt.Errorf("burst request %d: unexpected error: %w", i, r.err)
		}
	}
	log.Printf("burst of %d: %d served, %d rejected with 429", requests, ok, rejected)
	if ok == 0 {
		return fmt.Errorf("burst: no request succeeded")
	}
	if rejected == 0 {
		return fmt.Errorf("burst: no request was rejected with 429 (queue not enforcing backpressure?)")
	}
	return nil
}
