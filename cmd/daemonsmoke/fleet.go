package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/pkg/api"
	"repro/pkg/client"
)

// runStream holds the streaming endpoints to the batch contract through
// the typed client: per-file callbacks fire once per tree file and the
// summary record is byte-identical to the batch response.
func runStream(ctx context.Context, c *client.Client, dir string) error {
	tree, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}

	// Warm the cache, then take the batch truth: warm batch and warm
	// stream see identical per-file diagnostics.
	if _, err := c.Analyze(ctx, api.AnalyzeRequest{Tree: tree}); err != nil {
		return fmt.Errorf("analyze (warmup): %w", err)
	}
	batch, err := c.Analyze(ctx, api.AnalyzeRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("analyze (batch): %w", err)
	}
	var files int
	sum, err := c.AnalyzeStream(ctx, api.AnalyzeRequest{Tree: tree}, func(f api.StreamFile) { files++ })
	if err != nil {
		return fmt.Errorf("analyze stream: %w", err)
	}
	if files != len(tree.Files) {
		return fmt.Errorf("analyze stream: %d file records for %d files", files, len(tree.Files))
	}
	if err := assertSameJSON("analyze stream summary vs batch", sum, batch); err != nil {
		return err
	}
	log.Printf("analyze stream: %d file records, summary byte-identical to batch", files)

	fbatch, err := c.Findings(ctx, api.FindingsRequest{Tree: tree})
	if err != nil {
		return fmt.Errorf("findings (batch): %w", err)
	}
	perFile := map[string][]string{}
	fsum, err := c.FindingsStream(ctx, api.FindingsRequest{Tree: tree}, func(f api.StreamFile) {
		for _, fd := range f.Findings {
			perFile[f.Path] = append(perFile[f.Path], fmt.Sprintf("%s:%d:%s:%s", fd.File, fd.Line, fd.Rule, fd.Message))
		}
	})
	if err != nil {
		return fmt.Errorf("findings stream: %w", err)
	}
	if err := assertSameJSON("findings stream summary vs batch", fsum, fbatch); err != nil {
		return err
	}
	// The per-file records, concatenated in path order, must carry exactly
	// the batch report's findings.
	paths := make([]string, 0, len(perFile))
	for p := range perFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var concat []string
	for _, p := range paths {
		concat = append(concat, perFile[p]...)
	}
	var want []string
	if fbatch.Report != nil {
		for _, fd := range fbatch.Report.Findings {
			want = append(want, fmt.Sprintf("%s:%d:%s:%s", fd.File, fd.Line, fd.Rule, fd.Message))
		}
	}
	if len(want) == 0 {
		return fmt.Errorf("findings stream: batch report is empty; parity check is vacuous")
	}
	if strings.Join(concat, "\n") != strings.Join(want, "\n") {
		return fmt.Errorf("findings stream: concatenated records differ from the batch report:\n%s\nvs\n%s",
			strings.Join(concat, "\n"), strings.Join(want, "\n"))
	}
	log.Printf("findings stream: %d finding(s) across records match the batch report exactly", len(want))
	return nil
}

// daemonProc is one secmetricd the fleet smoke booted itself.
type daemonProc struct {
	name string
	cmd  *exec.Cmd
	addr string
	args []string // the full arg list, for restarting on the same address
	bin  string
	logP string
}

// startDaemon boots bin with the given args plus addr bookkeeping and
// waits for the address file. addr == "" picks an ephemeral port.
func startDaemon(bin, tmp, name, addr string, extra ...string) (*daemonProc, error) {
	addrFile := filepath.Join(tmp, name+".addr")
	os.Remove(addrFile)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	logP := filepath.Join(tmp, name+".log")
	logf, err := os.OpenFile(logP, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer logf.Close()
	args := append([]string{"-addr", addr, "-addr-file", addrFile}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			return &daemonProc{name: name, cmd: cmd, addr: string(data), args: extra, bin: bin, logP: logP}, nil
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			logData, _ := os.ReadFile(logP)
			return nil, fmt.Errorf("%s never wrote its address; log:\n%s", name, logData)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemonProc) stop() {
	if d == nil || d.cmd == nil || d.cmd.Process == nil {
		return
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

// kill SIGKILLs the process — the fleet smoke's stand-in for a backend
// dying without a drain.
func (d *daemonProc) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// canonRuns canonicalizes a query response for cross-daemon comparison:
// each shard stamps runs with its own wall clock, so the time field is
// zeroed; everything else must match byte for byte.
func canonRuns(resp *api.QueryResponse) ([]byte, error) {
	raw, err := json.Marshal(resp.Runs)
	if err != nil {
		return nil, err
	}
	var runs []map[string]any
	if err := json.Unmarshal(raw, &runs); err != nil {
		return nil, err
	}
	for _, r := range runs {
		delete(r, "time")
	}
	return json.MarshalIndent(runs, "", " ")
}

// routerHealthy polls the router's /healthz until want backends report
// healthy (or the deadline passes).
func routerHealthy(routerAddr string, want int, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		var health api.RouterHealth
		resp, err := http.Get("http://" + routerAddr + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
		}
		if err == nil {
			healthy := 0
			for _, b := range health.Backends {
				if b.Healthy {
					healthy++
				}
			}
			if healthy == want {
				return nil
			}
		}
		if time.Now().After(end) {
			return fmt.Errorf("router never reached %d healthy backend(s): %+v", want, health.Backends)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// coalescedRequests sums the request-kind coalesced counter across a set
// of daemons' /metrics expositions.
func coalescedRequests(ctx context.Context, addrs []string) (int, error) {
	total := 0
	for _, a := range addrs {
		m, err := client.New("http://" + a).RawMetrics(ctx)
		if err != nil {
			return 0, fmt.Errorf("metrics on %s: %w", a, err)
		}
		for _, line := range strings.Split(m, "\n") {
			if strings.HasPrefix(line, `secmetricd_coalesced_total{kind="request"`) {
				var v int
				if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err == nil {
					total += v
				}
			}
		}
	}
	return total, nil
}

// runFleet boots a solo daemon, three shard backends, and the router, then
// holds the fleet to the solo daemon's answers: same bytes for score,
// rank, delta, and (time-normalized) query; coalescing on the home shard;
// and service through a SIGKILLed backend and its recovery.
func runFleet(ctx context.Context, daemonBin, modelFile, dir string, requests int) error {
	tmp, err := os.MkdirTemp("", "fleetsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	common := func(name string) []string {
		return []string{
			"-model", modelFile, "-workers", "2", "-queue", "64",
			"-db", filepath.Join(tmp, name+".db"),
		}
	}
	solo, err := startDaemon(daemonBin, tmp, "solo", "", common("solo")...)
	if err != nil {
		return err
	}
	defer solo.stop()
	backends := make([]*daemonProc, 3)
	for i := range backends {
		name := fmt.Sprintf("b%d", i+1)
		backends[i], err = startDaemon(daemonBin, tmp, name, "", common(name)...)
		if err != nil {
			return err
		}
		defer backends[i].stop()
	}
	routeList := make([]string, len(backends))
	backendAddrs := make([]string, len(backends))
	for i, b := range backends {
		routeList[i] = "http://" + b.addr
		backendAddrs[i] = b.addr
	}
	router, err := startDaemon(daemonBin, tmp, "router", "",
		"-route", strings.Join(routeList, ","), "-health-interval", "100ms")
	if err != nil {
		return err
	}
	defer router.stop()
	log.Printf("fleet up: solo %s, backends %v, router %s", solo.addr, backendAddrs, router.addr)

	cSolo := client.New("http://" + solo.addr)
	cFleet := client.New("http://" + router.addr)

	base, err := client.TreeFromDir(dir)
	if err != nil {
		return err
	}
	namedTree := func(name string) api.Tree { return api.Tree{Name: name, Files: base.Files} }

	// 1. Score parity across enough distinct repos to involve every shard.
	const repos = 12
	for i := 0; i < repos; i++ {
		tree := namedTree(fmt.Sprintf("fleet-%d", i))
		fleetResp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: tree})
		if err != nil {
			return fmt.Errorf("fleet score %s: %w", tree.Name, err)
		}
		soloResp, err := cSolo.Score(ctx, api.ScoreRequest{Tree: tree})
		if err != nil {
			return fmt.Errorf("solo score %s: %w", tree.Name, err)
		}
		if err := assertSameJSON("fleet vs solo score "+tree.Name, fleetResp.Report, soloResp.Report); err != nil {
			return err
		}
	}
	log.Printf("score parity: %d repos byte-identical through the router", repos)

	// 2. Rank parity.
	rTree := namedTree("fleet-rank")
	fleetRank, err := cFleet.Rank(ctx, api.RankRequest{Tree: rTree})
	if err != nil {
		return fmt.Errorf("fleet rank: %w", err)
	}
	soloRank, err := cSolo.Rank(ctx, api.RankRequest{Tree: rTree})
	if err != nil {
		return fmt.Errorf("solo rank: %w", err)
	}
	if err := assertSameJSON("fleet vs solo rank", fleetRank.Ranking, soloRank.Ranking); err != nil {
		return err
	}
	log.Printf("rank parity: byte-identical through the router")

	// 3. Delta through the router: the 409 contract crosses it, sessions
	// stay shard-local, and the incremental bytes match the solo daemon's.
	const repo = "fleet-delta-repo"
	if _, err := cFleet.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{
		Modified: []api.File{base.Files[0]},
	}}); !client.IsStaleSession(err) {
		return fmt.Errorf("fleet delta: unseeded modify should answer 409 stale_session through the router, got: %v", err)
	}
	deltaDance := func(c *client.Client) (*api.DeltaResponse, *api.DeltaResponse, error) {
		seed, err := c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{Added: base.Files}})
		if err != nil {
			return nil, nil, fmt.Errorf("seed: %w", err)
		}
		edited := base.Files[0]
		edited.Content += "\nint fleet_edit(int x) { if (x > 7) { return x; } return 0; }\n"
		change, err := c.Delta(ctx, api.DeltaRequest{RepoID: repo, Changeset: api.Changeset{
			Modified: []api.File{edited},
		}})
		if err != nil {
			return nil, nil, fmt.Errorf("change: %w", err)
		}
		return seed, change, nil
	}
	fSeed, fChange, err := deltaDance(cFleet)
	if err != nil {
		return fmt.Errorf("fleet delta: %w", err)
	}
	sSeed, sChange, err := deltaDance(cSolo)
	if err != nil {
		return fmt.Errorf("solo delta: %w", err)
	}
	if err := assertSameJSON("fleet vs solo delta seed report", fSeed.Report, sSeed.Report); err != nil {
		return err
	}
	if err := assertSameJSON("fleet vs solo delta change report", fChange.Report, sChange.Report); err != nil {
		return err
	}
	if err := assertSameJSON("fleet vs solo delta comparison", fChange.Comparison, sChange.Comparison); err != nil {
		return err
	}
	log.Printf("delta parity: 409 + seed + 1-file change byte-identical through the router")

	// 4. Query parity: the scores above were recorded shard-local; a
	// repo-filtered query converges on the owning shard and answers what
	// the solo daemon's all-in-one history answers (times normalized).
	for _, name := range []string{"fleet-0", "fleet-7"} {
		q := api.QueryRequest{Query: fmt.Sprintf("repo = %q", name)}
		fleetQ, err := cFleet.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("fleet query %s: %w", name, err)
		}
		soloQ, err := cSolo.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("solo query %s: %w", name, err)
		}
		if len(fleetQ.Runs) == 0 {
			return fmt.Errorf("fleet query %s: no runs recorded", name)
		}
		fr, err := canonRuns(fleetQ)
		if err != nil {
			return err
		}
		sr, err := canonRuns(soloQ)
		if err != nil {
			return err
		}
		if string(fr) != string(sr) {
			return fmt.Errorf("query %s: fleet runs differ from solo runs:\n%s\nvs\n%s", name, fr, sr)
		}
	}
	// A query that cannot name its shard is refused, not partially answered.
	if _, err := cFleet.Query(ctx, api.QueryRequest{Query: "score > 0"}); err == nil {
		return fmt.Errorf("fleet query without a repo filter unexpectedly succeeded")
	}
	log.Printf("query parity: shard-local history answers match the solo daemon")

	// 5. Coalescing drill: identical concurrent scores of a heavy tree all
	// hash to one backend; the followers ride the leader's execution.
	big, err := bigTree(dir, 30)
	if err != nil {
		return err
	}
	big.Name = "fleet-coalesce"
	before, err := coalescedRequests(ctx, backendAddrs)
	if err != nil {
		return err
	}
	bodies := make([][]byte, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: big})
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], errs[i] = canon(resp.Report)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("coalesce burst %d: %w", i, err)
		}
		if string(bodies[i]) != string(bodies[0]) {
			return fmt.Errorf("coalesce burst %d: response differs from burst 0", i)
		}
	}
	after, err := coalescedRequests(ctx, backendAddrs)
	if err != nil {
		return err
	}
	if after <= before {
		return fmt.Errorf("coalesce burst: no request was coalesced (counter %d -> %d)", before, after)
	}
	soloBig, err := cSolo.Score(ctx, api.ScoreRequest{Tree: big})
	if err != nil {
		return fmt.Errorf("solo score (big): %w", err)
	}
	soloBigC, err := canon(soloBig.Report)
	if err != nil {
		return err
	}
	if string(bodies[0]) != string(soloBigC) {
		return fmt.Errorf("coalesced fleet response differs from the solo daemon's")
	}
	log.Printf("coalescing: %d identical scores deduplicated %d request(s) on the home shard, bytes match solo", requests, after-before)

	// 6. Kill drill: baseline every repo, SIGKILL one backend under load,
	// then require every repo to keep answering its baseline bytes.
	baseline := make(map[string][]byte, repos)
	for i := 0; i < repos; i++ {
		name := fmt.Sprintf("fleet-%d", i)
		resp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: namedTree(name)})
		if err != nil {
			return fmt.Errorf("baseline %s: %w", name, err)
		}
		baseline[name], err = canon(resp.Report)
		if err != nil {
			return err
		}
	}
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	var loadOK, loadErr int64
	var loadMu sync.Mutex
	for w := 0; w < 4; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				name := fmt.Sprintf("fleet-%d", (w*31+i)%repos)
				resp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: namedTree(name)})
				loadMu.Lock()
				if err != nil {
					// Requests in flight on the dying backend at the kill
					// instant may fail; the sweep below is the contract.
					loadErr++
				} else if b, cerr := canon(resp.Report); cerr == nil && string(b) == string(baseline[name]) {
					loadOK++
				} else {
					loadErr++
				}
				loadMu.Unlock()
			}
		}(w)
	}
	time.Sleep(500 * time.Millisecond)
	victim := backends[1]
	victim.kill()
	log.Printf("killed backend %s (%s) mid-burst", victim.name, victim.addr)
	time.Sleep(500 * time.Millisecond)
	close(stopLoad)
	loadWG.Wait()
	if loadOK == 0 {
		return fmt.Errorf("kill drill: no request succeeded under load (%d errors)", loadErr)
	}
	log.Printf("kill drill load: %d correct responses, %d transient failures", loadOK, loadErr)

	// With the backend dead, every repo must still answer its baseline
	// bytes (keys slid to the ring successor), and the router must report
	// the ejection.
	if err := routerHealthy(router.addr, 2, 10*time.Second); err != nil {
		return fmt.Errorf("after kill: %w", err)
	}
	for name, want := range baseline {
		resp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: namedTree(name)})
		if err != nil {
			return fmt.Errorf("post-kill score %s: %w", name, err)
		}
		got, err := canon(resp.Report)
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			return fmt.Errorf("post-kill score %s: bytes differ from baseline", name)
		}
	}
	log.Printf("post-kill: all %d repos answer baseline bytes through %d surviving backends", repos, 2)

	// 7. Recovery: restart the backend on its old address; the router's
	// probes re-admit it and the fleet answers whole again.
	restarted, err := startDaemon(victim.bin, tmp, victim.name+"-restart", victim.addr, victim.args...)
	if err != nil {
		return fmt.Errorf("restart %s: %w", victim.name, err)
	}
	defer restarted.stop()
	if err := routerHealthy(router.addr, 3, 15*time.Second); err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	for name, want := range baseline {
		resp, err := cFleet.Score(ctx, api.ScoreRequest{Tree: namedTree(name)})
		if err != nil {
			return fmt.Errorf("post-restart score %s: %w", name, err)
		}
		got, err := canon(resp.Report)
		if err != nil {
			return err
		}
		if string(got) != string(want) {
			return fmt.Errorf("post-restart score %s: bytes differ from baseline", name)
		}
	}
	log.Printf("recovery: backend re-admitted; all repos answer baseline bytes with the fleet whole")
	return nil
}
