// Command storesmoke is verify.sh's storage-engine crash drill. It
// appends findings runs into a findex database with a crash injected into
// the WAL mid-stream, abandons the handles without checkpointing (the
// moral equivalent of kill -9), reopens, and asserts that every
// acknowledged run survived intact, that nothing unacknowledged leaked in,
// and that the index-planned query path returns byte-identical results to
// the forced full scan over the recovered data.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cwe"
	"repro/internal/findings"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/store/findex"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storesmoke: ")
	dir := flag.String("dir", "", "working directory (empty = fresh temp dir, removed on exit)")
	runs := flag.Int("runs", 400, "runs to attempt before the injected crash stops the writer")
	crash := flag.Int64("crash", 128<<10, "cumulative WAL bytes after which the injected crash fires (0 = run to completion)")
	seed := flag.Uint64("seed", 0xc0ffee, "deterministic run-content seed")
	flag.Parse()
	if err := run(*dir, *runs, *crash, *seed); err != nil {
		log.Fatal(err)
	}
}

// synthRun builds one deterministic findings run.
func synthRun(rng *stats.RNG, i int) findex.Run {
	repos := []string{"app-a", "app-b", "app-c"}
	files := []string{"src/a.c", "src/b.c", "lib/c.c"}
	cwes := []int{0, 78, 119, 121, 134, 676}
	rep := &findings.Report{}
	for j, nf := 0, rng.Intn(5); j < nf; j++ {
		rep.Findings = append(rep.Findings, findings.Finding{
			Rule:     "smoke",
			CWE:      cwe.ID(cwes[rng.Intn(len(cwes))]),
			File:     files[rng.Intn(len(files))],
			Line:     j + 1,
			Severity: findings.Severity(rng.Intn(5)),
			Message:  "smoke",
		})
	}
	r := findex.NewRun(repos[i%len(repos)], "smoke", rep)
	r.Time = int64(1_700_000_000 + i*60)
	if rng.Bool(0.7) {
		r = r.WithScore(rng.Float64())
	}
	return r
}

func run(dir string, runs int, crash int64, seed uint64) error {
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "storesmoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "findings.db")

	db, err := store.Open(path, store.Options{CrashWALBytes: crash})
	if err != nil {
		return err
	}
	hist := findex.OpenDB(db)
	rng := stats.NewRNG(seed)

	type acked struct {
		repo  string
		seq   uint64
		total int
	}
	var acks []acked
	crashed := false
	for i := 0; i < runs; i++ {
		r := synthRun(rng, i)
		seq, err := hist.Append(r)
		if err != nil {
			if errors.Is(err, store.ErrCrashInjected) || errors.Is(err, store.ErrFailed) {
				crashed = true
				break
			}
			return fmt.Errorf("append %d: %w", i, err)
		}
		acks = append(acks, acked{r.Repo, seq, r.Total})
	}
	if crash > 0 && !crashed {
		return fmt.Errorf("crash injection never fired across %d runs; raise -runs or lower -crash", runs)
	}
	// Abandon skips the closing checkpoint: the page file and WAL are left
	// exactly as the crash left them.
	if err := db.Abandon(); err != nil {
		return fmt.Errorf("abandon: %w", err)
	}

	reopened, err := findex.Open(path)
	if err != nil {
		return fmt.Errorf("reopen after crash: %w", err)
	}
	defer reopened.Close()

	for _, a := range acks {
		got, ok, err := reopened.Get(a.repo, a.seq)
		if err != nil {
			return fmt.Errorf("get %s/%d after recovery: %w", a.repo, a.seq, err)
		}
		if !ok {
			return fmt.Errorf("acknowledged run %s/%d lost by recovery", a.repo, a.seq)
		}
		if got.Total != a.total {
			return fmt.Errorf("run %s/%d corrupted: total %d, want %d", a.repo, a.seq, got.Total, a.total)
		}
	}
	all, _, err := reopened.QueryString("", findex.Options{})
	if err != nil {
		return fmt.Errorf("query after recovery: %w", err)
	}
	if len(all) != len(acks) {
		return fmt.Errorf("recovered %d runs, acknowledged %d: phantom or lost commits", len(all), len(acks))
	}

	queries := []string{
		"cwe121 > 0",
		"severity >= high ORDER BY score DESC LIMIT 20",
		`repo = "app-b" AND total > 0 ORDER BY time DESC`,
	}
	for _, q := range queries {
		planned, ex, err := reopened.QueryString(q, findex.Options{})
		if err != nil {
			return fmt.Errorf("query %q: %w", q, err)
		}
		full, _, err := reopened.QueryString(q, findex.Options{ForceFullScan: true})
		if err != nil {
			return fmt.Errorf("full scan %q: %w", q, err)
		}
		pj, _ := json.Marshal(planned)
		fj, _ := json.Marshal(full)
		if string(pj) != string(fj) {
			return fmt.Errorf("parity violation for %q after recovery:\n planned: %s\n full:    %s", q, pj, fj)
		}
		if ex.FullScan {
			return fmt.Errorf("query %q fell back to a full scan; expected an index", q)
		}
	}

	fmt.Printf("storesmoke: OK — %d acknowledged runs survived an injected crash at %d WAL bytes; index/full-scan parity holds\n",
		len(acks), crash)
	return nil
}
